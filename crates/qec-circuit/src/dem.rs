//! Detector error models: symbolic error propagation and fast sampling.
//!
//! A detector error model (DEM) reduces a noisy Clifford circuit to a list
//! of independent *error mechanisms*, each with a probability and the set of
//! detectors and logical observables it flips. Monte-Carlo sampling over the
//! DEM is equivalent in distribution to Pauli-frame simulation of the
//! circuit, but orders of magnitude faster for the low error rates the
//! Astrea paper targets, because shots can skip directly between triggered
//! mechanisms.

use crate::bittable::{column_seed, BitTable};
use crate::circuit::{Circuit, Op};
use crate::recordset::RecordSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// One independent error mechanism of a [`DetectorErrorModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorMechanism {
    /// Sorted detector indices this mechanism flips.
    pub detectors: Vec<u32>,
    /// Bitmask of logical observables this mechanism flips.
    pub observables: u32,
    /// Probability that the mechanism triggers, independently per shot.
    pub probability: f64,
}

/// A detector error model extracted from a [`Circuit`].
///
/// See [`Circuit::detector_error_model`].
#[derive(Debug, Clone)]
pub struct DetectorErrorModel {
    num_detectors: usize,
    num_observables: usize,
    mechanisms: Vec<ErrorMechanism>,
}

impl DetectorErrorModel {
    /// Builds a model directly from mechanisms — for tests, hand-written
    /// models, and the text loader in [`crate::dem_io`].
    ///
    /// # Panics
    ///
    /// Panics if a mechanism references a detector or observable outside
    /// the declared counts, or has a probability outside `(0, 1]`.
    pub fn from_mechanisms(
        num_detectors: usize,
        num_observables: usize,
        mechanisms: Vec<ErrorMechanism>,
    ) -> DetectorErrorModel {
        for m in &mechanisms {
            assert!(
                m.probability > 0.0 && m.probability <= 1.0,
                "invalid mechanism probability {}",
                m.probability
            );
            for &d in &m.detectors {
                assert!(
                    (d as usize) < num_detectors,
                    "mechanism references detector {d} of {num_detectors}"
                );
            }
            assert!(
                num_observables >= 32 - m.observables.leading_zeros() as usize,
                "mechanism references observables outside the declared count"
            );
        }
        DetectorErrorModel {
            num_detectors,
            num_observables,
            mechanisms,
        }
    }

    /// Number of detectors in the originating circuit.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Number of logical observables in the originating circuit.
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// The merged error mechanisms, deduplicated by symptom set.
    pub fn mechanisms(&self) -> &[ErrorMechanism] {
        &self.mechanisms
    }

    /// Expected number of triggered mechanisms per shot (`Σ pᵢ`).
    pub fn expected_triggers(&self) -> f64 {
        self.mechanisms.iter().map(|m| m.probability).sum()
    }

    /// Mechanisms that flip a logical observable without flipping any
    /// detector. A valid distance-≥3 memory circuit has none; a nonempty
    /// result indicates a circuit-construction bug.
    pub fn undetectable_logicals(&self) -> Vec<&ErrorMechanism> {
        self.mechanisms
            .iter()
            .filter(|m| m.detectors.is_empty() && m.observables != 0)
            .collect()
    }
}

impl Circuit {
    /// Extracts the detector error model by symbolically propagating every
    /// elementary Pauli error component to the measurement records it
    /// flips.
    ///
    /// The extraction runs a single backward pass over the circuit,
    /// maintaining for each qubit the set of records an X (or Z) error at
    /// the current position would flip; each noise channel then reads off
    /// its components' symptom sets in O(record words). Mechanisms with
    /// identical symptom sets are merged with XOR-combined probabilities
    /// (`p ← p₁ + p₂ − 2p₁p₂`), matching Stim's DEM semantics.
    pub fn detector_error_model(&self) -> DetectorErrorModel {
        let num_records = self.num_records();
        let nq = self.num_qubits();

        // Forward record index for each MeasureZ op.
        let mut record_of_op = Vec::with_capacity(self.ops().len());
        let mut next = 0u32;
        for op in self.ops() {
            if let Op::MeasureZ(_) = op {
                record_of_op.push(next);
                next += 1;
            } else {
                record_of_op.push(u32::MAX);
            }
        }

        // record -> (detector ids, observable mask)
        let mut dets_of_record: Vec<Vec<u32>> = vec![Vec::new(); num_records];
        for (d, det) in self.detectors().iter().enumerate() {
            for &r in &det.records {
                dets_of_record[r as usize].push(d as u32);
            }
        }
        let mut obs_of_record: Vec<u32> = vec![0; num_records];
        for (i, obs) in self.observables().iter().enumerate() {
            for &r in obs {
                obs_of_record[r as usize] ^= 1 << i;
            }
        }

        let mut rx: Vec<RecordSet> = (0..nq).map(|_| RecordSet::new(num_records)).collect();
        let mut rz: Vec<RecordSet> = (0..nq).map(|_| RecordSet::new(num_records)).collect();

        let mut merged: HashMap<(Vec<u32>, u32), f64> = HashMap::new();
        let mut scratch = RecordSet::new(num_records);

        let mut add_mechanism = |records: &RecordSet, p: f64| {
            if p <= 0.0 {
                return;
            }
            // Fold flipped records into flipped detectors/observables.
            let mut dets: Vec<u32> = Vec::new();
            let mut obs = 0u32;
            for r in records.iter_ones() {
                dets.extend_from_slice(&dets_of_record[r]);
                obs ^= obs_of_record[r];
            }
            dets.sort_unstable();
            // Remove detectors toggled an even number of times.
            let mut folded = Vec::with_capacity(dets.len());
            let mut i = 0;
            while i < dets.len() {
                let mut j = i + 1;
                while j < dets.len() && dets[j] == dets[i] {
                    j += 1;
                }
                if (j - i) % 2 == 1 {
                    folded.push(dets[i]);
                }
                i = j;
            }
            if folded.is_empty() && obs == 0 {
                return;
            }
            let slot = merged.entry((folded, obs)).or_insert(0.0);
            *slot = *slot + p - 2.0 * *slot * p;
        };

        for (idx, op) in self.ops().iter().enumerate().rev() {
            match *op {
                Op::ResetZ(q) => {
                    rx[q as usize].clear();
                    rz[q as usize].clear();
                }
                Op::H(q) => {
                    let q = q as usize;
                    let (a, b) = (rx[q].clone(), rz[q].clone());
                    rx[q] = b;
                    rz[q] = a;
                }
                Op::Cnot(c, t) => {
                    let (c, t) = (c as usize, t as usize);
                    // X on the control also flips everything an X on the
                    // target would flip after the gate; dually for Z on the
                    // target.
                    let tx = rx[t].clone();
                    rx[c].xor_assign(&tx);
                    let cz = rz[c].clone();
                    rz[t].xor_assign(&cz);
                }
                Op::MeasureZ(q) => {
                    rx[q as usize].toggle(record_of_op[idx] as usize);
                }
                Op::Depolarize1 { q, p } => {
                    let q = q as usize;
                    let comp = p / 3.0;
                    add_mechanism(&rx[q], comp); // X
                    add_mechanism(&rz[q], comp); // Z
                    scratch.clear();
                    scratch.xor_assign(&rx[q]);
                    scratch.xor_assign(&rz[q]);
                    add_mechanism(&scratch, comp); // Y
                }
                Op::Depolarize2 { a, b, p } => {
                    let (a, b) = (a as usize, b as usize);
                    let comp = p / 15.0;
                    for pattern in 1u8..16 {
                        scratch.clear();
                        if pattern & 1 != 0 {
                            scratch.xor_assign(&rx[a]);
                        }
                        if pattern & 2 != 0 {
                            scratch.xor_assign(&rz[a]);
                        }
                        if pattern & 4 != 0 {
                            scratch.xor_assign(&rx[b]);
                        }
                        if pattern & 8 != 0 {
                            scratch.xor_assign(&rz[b]);
                        }
                        add_mechanism(&scratch, comp);
                    }
                }
                Op::XError { q, p } => {
                    add_mechanism(&rx[q as usize], p);
                }
                Op::Tick => {}
            }
        }

        let mut mechanisms: Vec<ErrorMechanism> = merged
            .into_iter()
            .map(|((detectors, observables), probability)| ErrorMechanism {
                detectors,
                observables,
                probability,
            })
            .collect();
        // Deterministic order: by symptom set, then observable mask.
        mechanisms.sort_by(|m1, m2| {
            m1.detectors
                .cmp(&m2.detectors)
                .then(m1.observables.cmp(&m2.observables))
        });

        DetectorErrorModel {
            num_detectors: self.num_detectors(),
            num_observables: self.num_observables(),
            mechanisms,
        }
    }
}

/// One sampled shot from a [`DemSampler`]: the triggered detectors and the
/// logical-observable flip mask.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Shot {
    /// Sorted indices of the detectors that fired.
    pub detectors: Vec<u32>,
    /// Bitmask of flipped logical observables.
    pub observables: u32,
}

impl Shot {
    /// The Hamming weight of the syndrome vector (number of fired
    /// detectors).
    pub fn hamming_weight(&self) -> usize {
        self.detectors.len()
    }
}

/// Groups mechanism indices by exact probability, highest first.
///
/// The ordering is deterministic (probabilities are distinct group keys and
/// indices are pushed in mechanism order), which both samplers rely on for
/// reproducible streams.
fn probability_groups(dem: &DetectorErrorModel) -> Vec<(f64, Vec<u32>)> {
    let mut by_p: HashMap<u64, Vec<u32>> = HashMap::new();
    for (i, m) in dem.mechanisms().iter().enumerate() {
        by_p.entry(m.probability.to_bits())
            .or_default()
            .push(i as u32);
    }
    let mut groups: Vec<(f64, Vec<u32>)> = by_p
        .into_iter()
        .map(|(bits, idxs)| (f64::from_bits(bits), idxs))
        .collect();
    groups.sort_by(|a, b| b.0.total_cmp(&a.0));
    groups
}

/// Fast Monte-Carlo sampler over a [`DetectorErrorModel`].
///
/// Mechanisms are grouped by probability; within each group the sampler
/// jumps between triggered mechanisms with geometrically distributed skips,
/// so a shot costs `O(groups + triggers)` instead of `O(mechanisms)`.
///
/// [`DemSampler::sample_into`] is the primary per-shot path (zero
/// allocation once the buffer has grown); for bulk sampling prefer the
/// word-parallel [`BatchDemSampler`], which amortizes the group walk over
/// 64 shots per bitwise op.
#[derive(Debug, Clone)]
pub struct DemSampler {
    /// `(probability, mechanism indices)` groups.
    groups: Vec<(f64, Vec<u32>)>,
    /// Flattened copy of the mechanisms for cache-friendly access.
    mechanisms: Vec<ErrorMechanism>,
    parity: Vec<bool>,
    touched: Vec<u32>,
    /// Reused output buffer for [`DemSampler::sample`].
    shot: Shot,
}

impl DemSampler {
    /// Prepares a sampler for the given model.
    pub fn new(dem: &DetectorErrorModel) -> DemSampler {
        DemSampler {
            groups: probability_groups(dem),
            mechanisms: dem.mechanisms().to_vec(),
            parity: vec![false; dem.num_detectors()],
            touched: Vec::new(),
            shot: Shot::default(),
        }
    }

    /// Samples one shot into an internal buffer and returns a reference to
    /// it — no allocation after the first call. Clone the result if it must
    /// outlive the next `sample`/`sample_into` call.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> &Shot {
        let mut shot = std::mem::take(&mut self.shot);
        self.sample_into(rng, &mut shot);
        self.shot = shot;
        &self.shot
    }

    /// Samples one shot into an existing buffer, avoiding allocation.
    pub fn sample_into<R: Rng + ?Sized>(&mut self, rng: &mut R, shot: &mut Shot) {
        shot.detectors.clear();
        shot.observables = 0;
        for &t in &self.touched {
            self.parity[t as usize] = false;
        }
        self.touched.clear();

        for (p, idxs) in &self.groups {
            let p = *p;
            if p <= 0.0 {
                continue;
            }
            if p >= 1.0 {
                for &mi in idxs {
                    let m = &self.mechanisms[mi as usize];
                    shot.observables ^= m.observables;
                    for &d in &m.detectors {
                        self.parity[d as usize] = !self.parity[d as usize];
                        self.touched.push(d);
                    }
                }
                continue;
            }
            let log1mp = (1.0 - p).ln();
            let mut i = 0usize;
            loop {
                // Geometric skip: number of untriggered mechanisms before
                // the next trigger.
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let skip = (u.ln() / log1mp).floor();
                if skip >= (idxs.len() - i) as f64 {
                    break;
                }
                i += skip as usize;
                let m = &self.mechanisms[idxs[i] as usize];
                shot.observables ^= m.observables;
                for &d in &m.detectors {
                    self.parity[d as usize] = !self.parity[d as usize];
                    self.touched.push(d);
                }
                i += 1;
                if i >= idxs.len() {
                    break;
                }
            }
        }

        // Collect detectors whose parity is odd.
        self.touched.sort_unstable();
        self.touched.dedup();
        for &d in &self.touched {
            if self.parity[d as usize] {
                shot.detectors.push(d);
            }
        }
    }
}

/// XORs a 64-lane trigger mask into the detector and observable rows a
/// mechanism flips — one word op per symptom for 64 shots.
#[inline]
fn apply_mechanism_mask(
    m: &ErrorMechanism,
    word: usize,
    mask: u64,
    detectors: &mut BitTable,
    observables: &mut BitTable,
) {
    for &d in &m.detectors {
        detectors.xor_word(d as usize, word, mask);
    }
    let mut obs = m.observables;
    while obs != 0 {
        let bit = obs.trailing_zeros() as usize;
        obs &= obs - 1;
        observables.xor_word(bit, word, mask);
    }
}

/// Word-parallel Monte-Carlo sampler over a [`DetectorErrorModel`]: 64
/// shots per `u64` word.
///
/// Samples the same independent-Bernoulli process as [`DemSampler`], but
/// per *word column* of 64 shots: within each probability group the sampler
/// geometric-skips over the flattened `mechanism-major × lane` trial space
/// (`mechanisms_in_group × 64` trials per column), accumulates consecutive
/// hits on one mechanism into a single 64-lane trigger mask, and applies
/// the mask with one XOR per flipped detector/observable row. A column
/// therefore costs `O(groups + triggers)` — the group walk is amortized 64×
/// relative to the scalar sampler, and symptom application is
/// word-parallel.
///
/// # Seeding contract
///
/// Column `w` (shots `64w .. 64w + 64`) is seeded with
/// [`column_seed`]`(seed, w)` and always draws all 64 lanes, padding
/// included, so the first `n` shots are bit-identical for any shot count
/// `≥ n` and any word-aligned chunking across threads (see
/// [`crate::bittable`]).
#[derive(Debug, Clone)]
pub struct BatchDemSampler {
    groups: Vec<(f64, Vec<u32>)>,
    mechanisms: Vec<ErrorMechanism>,
    num_detectors: usize,
    num_observables: usize,
}

impl BatchDemSampler {
    /// Prepares a word-parallel sampler for the given model.
    pub fn new(dem: &DetectorErrorModel) -> BatchDemSampler {
        BatchDemSampler {
            groups: probability_groups(dem),
            mechanisms: dem.mechanisms().to_vec(),
            num_detectors: dem.num_detectors(),
            num_observables: dem.num_observables(),
        }
    }

    /// Number of detectors in the underlying model.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Number of logical observables in the underlying model.
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// Samples `num_shots` shots, returning packed
    /// `num_detectors × num_shots` and `num_observables × num_shots`
    /// tables.
    pub fn sample(&self, seed: u64, num_shots: usize) -> (BitTable, BitTable) {
        let mut detectors = BitTable::new(self.num_detectors, num_shots);
        let mut observables = BitTable::new(self.num_observables, num_shots);
        self.sample_words(seed, 0, &mut detectors, &mut observables);
        (detectors, observables)
    }

    /// Fills pre-sized tables with word columns `first_word .. first_word +
    /// detectors.num_words()` of the global packed stream — the chunked
    /// entry point for splitting one logical run across threads. Local word
    /// `w` of the tables is global column `first_word + w`, seeded with
    /// [`column_seed`]`(seed, first_word + w)`.
    ///
    /// # Panics
    ///
    /// Panics if the tables' row counts don't match the model's
    /// detector/observable counts or their shot counts differ.
    pub fn sample_words(
        &self,
        seed: u64,
        first_word: usize,
        detectors: &mut BitTable,
        observables: &mut BitTable,
    ) {
        assert_eq!(detectors.num_bits(), self.num_detectors);
        assert_eq!(observables.num_bits(), self.num_observables);
        assert_eq!(detectors.num_shots(), observables.num_shots());
        // Row-sequential zeroing (a memset per row) beats zeroing inside
        // the per-column loop, which would stride across the whole table.
        detectors.clear();
        observables.clear();
        for w in 0..detectors.num_words() {
            let mut rng = StdRng::seed_from_u64(column_seed(seed, (first_word + w) as u64));
            for (p, idxs) in &self.groups {
                let p = *p;
                if p <= 0.0 {
                    continue;
                }
                if p >= 1.0 {
                    for &mi in idxs {
                        apply_mechanism_mask(
                            &self.mechanisms[mi as usize],
                            w,
                            !0,
                            detectors,
                            observables,
                        );
                    }
                    continue;
                }
                // Geometric skip over the flattened mechanism-major trial
                // space: trial `f` is lane `f % 64` of mechanism `f / 64`
                // within this group. Consecutive hits on one mechanism
                // accumulate into a single 64-lane mask before flushing.
                let total = idxs.len() * 64;
                let inv_log1mp = (1.0 - p).ln().recip();
                let mut f = 0usize;
                let mut cur = usize::MAX;
                let mut mask = 0u64;
                loop {
                    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                    let skip = (u.ln() * inv_log1mp).floor();
                    if skip >= (total - f) as f64 {
                        break;
                    }
                    f += skip as usize;
                    let mech = f / 64;
                    if mech != cur {
                        if cur != usize::MAX {
                            apply_mechanism_mask(
                                &self.mechanisms[idxs[cur] as usize],
                                w,
                                mask,
                                detectors,
                                observables,
                            );
                        }
                        cur = mech;
                        mask = 0;
                    }
                    mask |= 1u64 << (f % 64);
                    f += 1;
                    if f >= total {
                        break;
                    }
                }
                if cur != usize::MAX {
                    apply_mechanism_mask(
                        &self.mechanisms[idxs[cur] as usize],
                        w,
                        mask,
                        detectors,
                        observables,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_memory_z_circuit;
    use crate::frame::FrameSimulator;
    use crate::noise::NoiseModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use surface_code::SurfaceCode;

    fn d3_model(p: f64) -> DetectorErrorModel {
        let code = SurfaceCode::new(3).unwrap();
        let circuit = build_memory_z_circuit(&code, 3, NoiseModel::depolarizing(p));
        circuit.detector_error_model()
    }

    #[test]
    fn noiseless_circuit_has_empty_model() {
        let code = SurfaceCode::new(3).unwrap();
        let circuit = build_memory_z_circuit(&code, 3, NoiseModel::noiseless());
        let dem = circuit.detector_error_model();
        assert!(dem.mechanisms().is_empty());
        assert_eq!(dem.expected_triggers(), 0.0);
    }

    #[test]
    fn no_undetectable_logicals() {
        for d in [3, 5] {
            let code = SurfaceCode::new(d).unwrap();
            let circuit = build_memory_z_circuit(&code, d, NoiseModel::depolarizing(1e-3));
            let dem = circuit.detector_error_model();
            assert!(
                dem.undetectable_logicals().is_empty(),
                "d={d} has undetectable logical mechanisms"
            );
        }
    }

    #[test]
    fn mechanisms_have_small_symptom_sets() {
        // Circuit-level noise on the surface code produces mechanisms with
        // at most 4 flipped Z detectors (two-qubit Paulis straddling two
        // space-time edges).
        let dem = d3_model(1e-3);
        for m in dem.mechanisms() {
            assert!(
                m.detectors.len() <= 4,
                "mechanism flips {} detectors: {:?}",
                m.detectors.len(),
                m.detectors
            );
        }
    }

    #[test]
    fn all_detectors_are_covered() {
        let dem = d3_model(1e-3);
        let mut covered = vec![false; dem.num_detectors()];
        for m in dem.mechanisms() {
            for &d in &m.detectors {
                covered[d as usize] = true;
            }
        }
        assert!(covered.iter().all(|&b| b), "some detector can never fire");
    }

    #[test]
    fn probabilities_are_valid() {
        let dem = d3_model(1e-3);
        for m in dem.mechanisms() {
            assert!(m.probability > 0.0 && m.probability < 1.0);
        }
        assert!(dem.expected_triggers() > 0.0);
    }

    #[test]
    fn deterministic_error_produces_unit_probability_mechanism() {
        let mut c = Circuit::new(1);
        c.push(Op::ResetZ(0));
        c.push(Op::XError { q: 0, p: 1.0 });
        c.push(Op::MeasureZ(0));
        c.push_detector(vec![0], crate::circuit::DetectorCoord::default());
        let dem = c.detector_error_model();
        assert_eq!(dem.mechanisms().len(), 1);
        assert_eq!(dem.mechanisms()[0].detectors, vec![0]);
        assert_eq!(dem.mechanisms()[0].probability, 1.0);
    }

    #[test]
    fn identical_mechanisms_merge_with_xor_probability() {
        // Two independent p=0.25 X errors on the same qubit before one
        // measurement: net flip probability 2·0.25·0.75 = 0.375.
        let mut c = Circuit::new(1);
        c.push(Op::ResetZ(0));
        c.push(Op::XError { q: 0, p: 0.25 });
        c.push(Op::XError { q: 0, p: 0.25 });
        c.push(Op::MeasureZ(0));
        c.push_detector(vec![0], crate::circuit::DetectorCoord::default());
        let dem = c.detector_error_model();
        assert_eq!(dem.mechanisms().len(), 1);
        assert!((dem.mechanisms()[0].probability - 0.375).abs() < 1e-12);
    }

    #[test]
    fn sampler_matches_frame_simulator_statistics() {
        // The DEM sampler and the Pauli-frame simulator must agree on the
        // marginal firing rate of every detector and on the observable flip
        // rate, up to Monte-Carlo error.
        let p = 0.005;
        let code = SurfaceCode::new(3).unwrap();
        let circuit = build_memory_z_circuit(&code, 3, NoiseModel::depolarizing(p));
        let dem = circuit.detector_error_model();

        let shots = 60_000;
        let mut frame_counts = vec![0u32; circuit.num_detectors()];
        let mut frame_obs = 0u32;
        let mut sim = FrameSimulator::new(&circuit);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..shots {
            let (dets, obs) = sim.sample(&circuit, &mut rng);
            for (i, &b) in dets.iter().enumerate() {
                frame_counts[i] += b as u32;
            }
            frame_obs += obs & 1;
        }

        let mut dem_counts = vec![0u32; dem.num_detectors()];
        let mut dem_obs = 0u32;
        let mut sampler = DemSampler::new(&dem);
        let mut rng = StdRng::seed_from_u64(12);
        let mut shot = Shot::default();
        for _ in 0..shots {
            sampler.sample_into(&mut rng, &mut shot);
            for &d in &shot.detectors {
                dem_counts[d as usize] += 1;
            }
            dem_obs += shot.observables & 1;
        }

        for (i, (&f, &s)) in frame_counts.iter().zip(&dem_counts).enumerate() {
            let (f, s) = (f as f64 / shots as f64, s as f64 / shots as f64);
            // 5-sigma binomial tolerance.
            let sigma = (f.max(s).max(1.0 / shots as f64) / shots as f64).sqrt();
            assert!(
                (f - s).abs() < 5.0 * sigma + 1e-4,
                "detector {i}: frame rate {f}, dem rate {s}"
            );
        }
        let (f, s) = (
            frame_obs as f64 / shots as f64,
            dem_obs as f64 / shots as f64,
        );
        assert!((f - s).abs() < 0.01, "obs rates: frame {f}, dem {s}");
    }

    #[test]
    fn sampler_mean_triggers_matches_expectation() {
        let dem = d3_model(2e-3);
        let mut sampler = DemSampler::new(&dem);
        let mut rng = StdRng::seed_from_u64(3);
        let mut shot = Shot::default();
        let shots = 40_000;
        let mut total_parity_flips = 0usize;
        for _ in 0..shots {
            sampler.sample_into(&mut rng, &mut shot);
            total_parity_flips += shot.detectors.len();
        }
        // Expected detector flips per shot ≈ Σ_m p_m · |dets(m)| for small p.
        let expected: f64 = dem
            .mechanisms()
            .iter()
            .map(|m| m.probability * m.detectors.len() as f64)
            .sum();
        let mean = total_parity_flips as f64 / shots as f64;
        assert!(
            (mean - expected).abs() / expected < 0.1,
            "mean {mean}, expected {expected}"
        );
    }

    #[test]
    fn shot_hamming_weight() {
        let shot = Shot {
            detectors: vec![1, 5, 9],
            observables: 0,
        };
        assert_eq!(shot.hamming_weight(), 3);
    }

    #[test]
    fn sample_reuses_buffer_and_matches_sample_into() {
        let dem = d3_model(5e-3);
        let mut a = DemSampler::new(&dem);
        let mut b = DemSampler::new(&dem);
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77);
        let mut shot = Shot::default();
        for _ in 0..200 {
            let by_ref = a.sample(&mut rng_a).clone();
            b.sample_into(&mut rng_b, &mut shot);
            assert_eq!(by_ref, shot);
        }
    }

    #[test]
    fn batch_sampler_fires_unit_probability_mechanism_in_every_lane() {
        let dem = DetectorErrorModel::from_mechanisms(
            2,
            1,
            vec![ErrorMechanism {
                detectors: vec![1],
                observables: 1,
                probability: 1.0,
            }],
        );
        let sampler = BatchDemSampler::new(&dem);
        let (det, obs) = sampler.sample(3, 130);
        assert_eq!(det.count_row_ones(0), 0);
        assert_eq!(det.count_row_ones(1), 130);
        assert_eq!(obs.count_row_ones(0), 130);
    }

    #[test]
    fn batch_sampler_is_shot_count_prefix_invariant() {
        let dem = d3_model(5e-3);
        let sampler = BatchDemSampler::new(&dem);
        let (small_det, small_obs) = sampler.sample(9, 70);
        let (big_det, big_obs) = sampler.sample(9, 300);
        for shot in 0..70 {
            for d in 0..dem.num_detectors() {
                assert_eq!(small_det.get(d, shot), big_det.get(d, shot));
            }
            assert_eq!(small_obs.get(0, shot), big_obs.get(0, shot));
        }
    }

    #[test]
    fn batch_sampler_chunked_matches_monolithic() {
        let dem = d3_model(5e-3);
        let sampler = BatchDemSampler::new(&dem);
        let (whole_det, whole_obs) = sampler.sample(13, 192);
        let mut part_det = BitTable::new(dem.num_detectors(), 64);
        let mut part_obs = BitTable::new(dem.num_observables(), 64);
        for chunk in 0..3 {
            sampler.sample_words(13, chunk, &mut part_det, &mut part_obs);
            for shot in 0..64 {
                for d in 0..dem.num_detectors() {
                    assert_eq!(part_det.get(d, shot), whole_det.get(d, chunk * 64 + shot));
                }
                assert_eq!(part_obs.get(0, shot), whole_obs.get(0, chunk * 64 + shot));
            }
        }
    }

    #[test]
    fn batch_sampler_mean_triggers_matches_expectation() {
        let dem = d3_model(2e-3);
        let sampler = BatchDemSampler::new(&dem);
        let shots = 40_000;
        let (det, _) = sampler.sample(5, shots);
        let total: usize = (0..dem.num_detectors())
            .map(|d| det.count_row_ones(d))
            .sum();
        let expected: f64 = dem
            .mechanisms()
            .iter()
            .map(|m| m.probability * m.detectors.len() as f64)
            .sum();
        let mean = total as f64 / shots as f64;
        assert!(
            (mean - expected).abs() / expected < 0.1,
            "mean {mean}, expected {expected}"
        );
    }
}
