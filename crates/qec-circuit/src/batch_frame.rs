//! Word-parallel Pauli-frame Monte-Carlo sampling: 64 shots per bitwise op.
//!
//! [`BatchFrameSimulator`] is the packed counterpart of
//! [`crate::FrameSimulator`]: it propagates the X/Z error frames of 64
//! shots at once, one `u64` per qubit, so every Clifford operation costs
//! a constant number of bitwise instructions for the whole lane block —
//! a CNOT is two XORs for 64 shots, a Hadamard is one swap. Noise
//! channels draw a 64-lane trigger mask with geometric skip-sampling
//! (cost `O(64·p)` per channel, not `O(64)`), so the per-shot cost of a
//! noisy circuit approaches `ops / 64` word operations plus the
//! (probability-proportional) cost of the triggers themselves.
//!
//! # Seeding contract
//!
//! Shots are processed in word columns of 64; column `w` (shots `64w ..
//! 64w + 64`) runs the entire circuit with its own RNG seeded by
//! [`crate::column_seed`]`(seed, w)`, and every column always draws all
//! 64 lanes — padding lanes of a partial final column included. The
//! first `n` shots of a run are therefore bit-identical for any
//! requested shot count `≥ n` and any chunking of columns across
//! threads.

use crate::bittable::{column_seed, BitTable};
use crate::circuit::{Circuit, Op};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a 64-lane Bernoulli(`p`) trigger mask with geometrically
/// distributed skips between set lanes, so the cost is proportional to
/// the expected number of triggers rather than to 64.
pub(crate) fn bernoulli_mask<R: Rng + ?Sized>(rng: &mut R, p: f64) -> u64 {
    if p >= 1.0 {
        return !0;
    }
    if p <= 0.0 {
        return 0;
    }
    let log1mp = (1.0 - p).ln();
    let mut mask = 0u64;
    let mut lane = 0usize;
    loop {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let skip = (u.ln() / log1mp).floor();
        if skip >= (64 - lane) as f64 {
            break;
        }
        lane += skip as usize;
        mask |= 1u64 << lane;
        lane += 1;
        if lane >= 64 {
            break;
        }
    }
    mask
}

/// A word-parallel Pauli-frame simulator: 64 shots per `u64`, one column
/// of 64 shots per circuit pass.
///
/// Produces the same *distribution* as [`crate::FrameSimulator`] (their
/// RNG streams differ), and bit-identical outcomes under deterministic
/// (`p = 1`) error injections — see the `packed_bridge` integration
/// tests.
///
/// ```
/// use qec_circuit::{build_memory_z_circuit, BatchFrameSimulator, NoiseModel};
/// use surface_code::SurfaceCode;
///
/// let code = SurfaceCode::new(3)?;
/// let circuit = build_memory_z_circuit(&code, 3, NoiseModel::noiseless());
/// let mut sim = BatchFrameSimulator::new(&circuit);
/// let (detectors, observables) = sim.sample(&circuit, 7, 100);
/// assert_eq!(detectors.num_shots(), 100);
/// assert!((0..circuit.num_detectors()).all(|d| detectors.count_row_ones(d) == 0));
/// assert_eq!(observables.count_row_ones(0), 0);
/// # Ok::<(), surface_code::InvalidDistance>(())
/// ```
#[derive(Debug, Clone)]
pub struct BatchFrameSimulator {
    /// X frame of 64 shots per qubit.
    x_frame: Vec<u64>,
    /// Z frame of 64 shots per qubit.
    z_frame: Vec<u64>,
    /// Measurement records of 64 shots per record slot.
    records: Vec<u64>,
}

impl BatchFrameSimulator {
    /// Creates a simulator sized for the given circuit.
    pub fn new(circuit: &Circuit) -> BatchFrameSimulator {
        BatchFrameSimulator {
            x_frame: vec![0; circuit.num_qubits()],
            z_frame: vec![0; circuit.num_qubits()],
            records: vec![0; circuit.num_records()],
        }
    }

    /// Samples `num_shots` shots, returning the packed detector table
    /// (`num_detectors × num_shots`) and observable table
    /// (`num_observables × num_shots`).
    ///
    /// # Panics
    ///
    /// Panics if `circuit` has more qubits or records than the circuit
    /// this simulator was created for.
    pub fn sample(
        &mut self,
        circuit: &Circuit,
        seed: u64,
        num_shots: usize,
    ) -> (BitTable, BitTable) {
        let mut detectors = BitTable::new(circuit.num_detectors(), num_shots);
        let mut observables = BitTable::new(circuit.num_observables(), num_shots);
        self.sample_words(circuit, seed, 0, &mut detectors, &mut observables);
        (detectors, observables)
    }

    /// Fills pre-sized tables with word columns `first_word ..
    /// first_word + detectors.num_words()` of the global packed stream —
    /// the chunked entry point for splitting one logical run across
    /// threads. Local word `w` of the tables is global column
    /// `first_word + w` and is seeded with
    /// [`column_seed`]`(seed, first_word + w)`.
    ///
    /// # Panics
    ///
    /// Panics if the tables' row counts don't match the circuit's
    /// detector/observable counts or their shot counts differ.
    pub fn sample_words(
        &mut self,
        circuit: &Circuit,
        seed: u64,
        first_word: usize,
        detectors: &mut BitTable,
        observables: &mut BitTable,
    ) {
        assert_eq!(detectors.num_bits(), circuit.num_detectors());
        assert_eq!(observables.num_bits(), circuit.num_observables());
        assert_eq!(detectors.num_shots(), observables.num_shots());
        for w in 0..detectors.num_words() {
            let mut rng = StdRng::seed_from_u64(column_seed(seed, (first_word + w) as u64));
            self.run_column(circuit, &mut rng);
            for (d, det) in circuit.detectors().iter().enumerate() {
                let folded = det
                    .records
                    .iter()
                    .fold(0u64, |acc, &r| acc ^ self.records[r as usize]);
                detectors.set_word(d, w, folded);
            }
            for (i, obs) in circuit.observables().iter().enumerate() {
                let folded = obs
                    .iter()
                    .fold(0u64, |acc, &r| acc ^ self.records[r as usize]);
                observables.set_word(i, w, folded);
            }
        }
    }

    /// Propagates one 64-shot column through the circuit, leaving the
    /// packed measurement records in `self.records`.
    fn run_column(&mut self, circuit: &Circuit, rng: &mut StdRng) {
        self.x_frame.fill(0);
        self.z_frame.fill(0);
        self.records.fill(0);
        let mut next_record = 0usize;

        for op in circuit.ops() {
            match *op {
                Op::ResetZ(q) => {
                    self.x_frame[q as usize] = 0;
                    self.z_frame[q as usize] = 0;
                }
                Op::H(q) => {
                    let q = q as usize;
                    std::mem::swap(&mut self.x_frame[q], &mut self.z_frame[q]);
                }
                Op::Cnot(c, t) => {
                    let (c, t) = (c as usize, t as usize);
                    self.x_frame[t] ^= self.x_frame[c];
                    self.z_frame[c] ^= self.z_frame[t];
                }
                Op::MeasureZ(q) => {
                    self.records[next_record] = self.x_frame[q as usize];
                    next_record += 1;
                }
                Op::Depolarize1 { q, p } => {
                    let mut triggered = bernoulli_mask(rng, p);
                    if triggered != 0 {
                        let q = q as usize;
                        let (mut xm, mut zm) = (0u64, 0u64);
                        while triggered != 0 {
                            let lane = triggered.trailing_zeros();
                            triggered &= triggered - 1;
                            match rng.gen_range(0..3u8) {
                                0 => xm |= 1u64 << lane,
                                1 => {
                                    xm |= 1u64 << lane;
                                    zm |= 1u64 << lane;
                                }
                                _ => zm |= 1u64 << lane,
                            }
                        }
                        self.x_frame[q] ^= xm;
                        self.z_frame[q] ^= zm;
                    }
                }
                Op::Depolarize2 { a, b, p } => {
                    let mut triggered = bernoulli_mask(rng, p);
                    if triggered != 0 {
                        let (a, b) = (a as usize, b as usize);
                        let (mut xa, mut za, mut xb, mut zb) = (0u64, 0u64, 0u64, 0u64);
                        while triggered != 0 {
                            let lane = triggered.trailing_zeros();
                            triggered &= triggered - 1;
                            // One of the 15 non-identity two-qubit
                            // Paulis as a nonzero (xa, za, xb, zb)
                            // pattern, matching the scalar simulator.
                            let pattern = rng.gen_range(1..16u8);
                            let bit = 1u64 << lane;
                            if pattern & 1 != 0 {
                                xa |= bit;
                            }
                            if pattern & 2 != 0 {
                                za |= bit;
                            }
                            if pattern & 4 != 0 {
                                xb |= bit;
                            }
                            if pattern & 8 != 0 {
                                zb |= bit;
                            }
                        }
                        self.x_frame[a] ^= xa;
                        self.z_frame[a] ^= za;
                        self.x_frame[b] ^= xb;
                        self.z_frame[b] ^= zb;
                    }
                }
                Op::XError { q, p } => {
                    self.x_frame[q as usize] ^= bernoulli_mask(rng, p);
                }
                Op::Tick => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_memory_z_circuit;
    use crate::circuit::DetectorCoord;
    use crate::noise::NoiseModel;
    use surface_code::SurfaceCode;

    #[test]
    fn noiseless_columns_are_silent() {
        let code = SurfaceCode::new(3).unwrap();
        let circuit = build_memory_z_circuit(&code, 3, NoiseModel::noiseless());
        let mut sim = BatchFrameSimulator::new(&circuit);
        let (det, obs) = sim.sample(&circuit, 3, 200);
        for d in 0..det.num_bits() {
            assert_eq!(det.count_row_ones(d), 0);
        }
        assert_eq!(obs.count_row_ones(0), 0);
    }

    #[test]
    fn deterministic_x_error_flips_every_lane() {
        let mut c = Circuit::new(1);
        c.push(Op::ResetZ(0));
        c.push(Op::XError { q: 0, p: 1.0 });
        c.push(Op::MeasureZ(0));
        c.push(Op::ResetZ(0));
        c.push(Op::MeasureZ(0));
        c.push_detector(vec![0], DetectorCoord::default());
        c.push_detector(vec![1], DetectorCoord::default());
        let mut sim = BatchFrameSimulator::new(&c);
        let (det, _) = sim.sample(&c, 9, 100);
        assert_eq!(det.count_row_ones(0), 100);
        assert_eq!(det.count_row_ones(1), 0);
    }

    #[test]
    fn bernoulli_mask_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(bernoulli_mask(&mut rng, 0.0), 0);
        assert_eq!(bernoulli_mask(&mut rng, 1.0), !0);
        let mut ones = 0u32;
        for _ in 0..2_000 {
            ones += bernoulli_mask(&mut rng, 0.25).count_ones();
        }
        let rate = ones as f64 / (2_000.0 * 64.0);
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shot_count_is_a_prefix_property() {
        let code = SurfaceCode::new(3).unwrap();
        let circuit = build_memory_z_circuit(&code, 3, NoiseModel::depolarizing(5e-3));
        let mut sim = BatchFrameSimulator::new(&circuit);
        let (small_det, small_obs) = sim.sample(&circuit, 11, 70);
        let (big_det, big_obs) = sim.sample(&circuit, 11, 200);
        for shot in 0..70 {
            for d in 0..small_det.num_bits() {
                assert_eq!(
                    small_det.get(d, shot),
                    big_det.get(d, shot),
                    "det {d}/{shot}"
                );
            }
            assert_eq!(small_obs.get(0, shot), big_obs.get(0, shot), "obs {shot}");
        }
    }

    #[test]
    fn chunked_sampling_matches_monolithic() {
        let code = SurfaceCode::new(3).unwrap();
        let circuit = build_memory_z_circuit(&code, 3, NoiseModel::depolarizing(5e-3));
        let mut sim = BatchFrameSimulator::new(&circuit);
        let (whole_det, whole_obs) = sim.sample(&circuit, 21, 192);
        let mut part_det = BitTable::new(circuit.num_detectors(), 64);
        let mut part_obs = BitTable::new(circuit.num_observables(), 64);
        for chunk in 0..3 {
            sim.sample_words(&circuit, 21, chunk, &mut part_det, &mut part_obs);
            for shot in 0..64 {
                for d in 0..part_det.num_bits() {
                    assert_eq!(
                        part_det.get(d, shot),
                        whole_det.get(d, chunk * 64 + shot),
                        "chunk {chunk} det {d} shot {shot}"
                    );
                }
                assert_eq!(part_obs.get(0, shot), whole_obs.get(0, chunk * 64 + shot));
            }
        }
    }
}
