//! Tile iteration over packed sampling runs — the producer half of the
//! streaming sampler→decoder pipeline.
//!
//! A long word-parallel sampling run is cut into fixed-size *tiles*:
//! contiguous, word-aligned blocks of packed shot columns small enough to
//! stay cache-resident while they are produced, shipped over a channel,
//! and screened/decoded. [`TileLayout`] does the word arithmetic,
//! [`SyndromeTile`] is the unit shipped between threads, and
//! [`PackedSyndromeSource`] abstracts over the two packed samplers
//! ([`BatchDemSampler`] and [`crate::BatchFrameSimulator`] via
//! [`FrameSimSource`]) so consumers never care where tiles came from.
//!
//! # Determinism contract
//!
//! Tiling inherits the [`column_seed`](crate::column_seed) contract (see
//! [`crate::bittable`]): word column `w` of the *global* run is always
//! seeded with `column_seed(seed, w)` and always draws all 64 lanes, so
//! shot `s` of a run is one fixed function of `(seed, s)` — independent
//! of the tile size, which producer sampled the tile, how many producers
//! or consumers there are, and in which order tiles are produced or
//! consumed. Any interleaving of any tiling is bit-identical to the
//! monolithic run; this is what lets the streamed pipeline reproduce the
//! barrier path exactly.

use std::sync::Arc;

use crate::batch_frame::BatchFrameSimulator;
use crate::bittable::BitTable;
use crate::circuit::Circuit;
use crate::dem::BatchDemSampler;

/// One packed tile of a sampling run: word columns `first_word ..` of the
/// global stream, holding `num_shots` consecutive shots starting at shot
/// `64 · first_word`.
#[derive(Debug, Clone)]
pub struct SyndromeTile {
    first_word: usize,
    detectors: BitTable,
    observables: BitTable,
}

impl SyndromeTile {
    /// Wraps packed detector/observable tables sampled at global word
    /// column `first_word`.
    ///
    /// # Panics
    ///
    /// Panics if the tables disagree on shot count.
    pub fn new(first_word: usize, detectors: BitTable, observables: BitTable) -> SyndromeTile {
        assert_eq!(
            detectors.num_shots(),
            observables.num_shots(),
            "detector/observable tables disagree on shot count"
        );
        SyndromeTile {
            first_word,
            detectors,
            observables,
        }
    }

    /// Global word column of the tile's first local word.
    pub fn first_word(&self) -> usize {
        self.first_word
    }

    /// Global index of the tile's first shot (`64 · first_word`).
    pub fn first_shot(&self) -> usize {
        self.first_word * 64
    }

    /// Number of shots in the tile.
    pub fn num_shots(&self) -> usize {
        self.detectors.num_shots()
    }

    /// The packed detector table (`num_detectors × num_shots`).
    pub fn detectors(&self) -> &BitTable {
        &self.detectors
    }

    /// The packed observable table (`num_observables × num_shots`).
    pub fn observables(&self) -> &BitTable {
        &self.observables
    }
}

/// The word-aligned tiling of a `total_shots` run into tiles of at most
/// `tile_words` packed words (≤ `64 · tile_words` shots) each.
///
/// Every tile except possibly the last spans exactly `tile_words` words;
/// the last covers whatever shots remain (its final word may be partial).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileLayout {
    total_shots: usize,
    tile_words: usize,
}

impl TileLayout {
    /// Lays out `total_shots` shots in tiles of `tile_words` words.
    ///
    /// # Panics
    ///
    /// Panics if `tile_words` is zero.
    pub fn new(total_shots: usize, tile_words: usize) -> TileLayout {
        assert!(tile_words > 0, "tile_words must be at least 1");
        TileLayout {
            total_shots,
            tile_words,
        }
    }

    /// Total shots across all tiles.
    pub fn total_shots(&self) -> usize {
        self.total_shots
    }

    /// Maximum words per tile.
    pub fn tile_words(&self) -> usize {
        self.tile_words
    }

    /// Number of tiles (zero when `total_shots` is zero).
    pub fn num_tiles(&self) -> usize {
        self.total_shots.div_ceil(64).div_ceil(self.tile_words)
    }

    /// The global first word and shot count of tile `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn tile(&self, index: usize) -> (usize, usize) {
        assert!(
            index < self.num_tiles(),
            "tile {index} of {}",
            self.num_tiles()
        );
        let first_word = index * self.tile_words;
        let end_shot = ((first_word + self.tile_words) * 64).min(self.total_shots);
        (first_word, end_shot - first_word * 64)
    }

    /// Iterates `(first_word, num_shots)` for every tile.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.num_tiles()).map(move |i| self.tile(i))
    }
}

/// A packed syndrome sampler that can fill arbitrary word columns of its
/// global shot stream — the producer interface of the streaming pipeline.
///
/// Implementors must honour the [`column_seed`](crate::column_seed)
/// contract: filling word columns `[first_word, first_word + k)` must
/// produce exactly those columns of the monolithic run with the same
/// seed, regardless of how the run is chunked. Both packed samplers in
/// this crate qualify.
pub trait PackedSyndromeSource: Send {
    /// Number of detector rows produced per shot.
    fn num_detectors(&self) -> usize;

    /// Number of observable rows produced per shot.
    fn num_observables(&self) -> usize;

    /// Fills pre-sized tables with global word columns `first_word ..
    /// first_word + detectors.num_words()` of the run seeded by `seed`.
    fn fill_words(
        &mut self,
        seed: u64,
        first_word: usize,
        detectors: &mut BitTable,
        observables: &mut BitTable,
    );

    /// Samples tile `index` of `layout` into a fresh [`SyndromeTile`].
    fn sample_tile(&mut self, seed: u64, layout: &TileLayout, index: usize) -> SyndromeTile {
        let (first_word, num_shots) = layout.tile(index);
        let mut detectors = BitTable::new(self.num_detectors(), num_shots);
        let mut observables = BitTable::new(self.num_observables(), num_shots);
        self.fill_words(seed, first_word, &mut detectors, &mut observables);
        SyndromeTile::new(first_word, detectors, observables)
    }
}

impl PackedSyndromeSource for BatchDemSampler {
    fn num_detectors(&self) -> usize {
        BatchDemSampler::num_detectors(self)
    }

    fn num_observables(&self) -> usize {
        BatchDemSampler::num_observables(self)
    }

    fn fill_words(
        &mut self,
        seed: u64,
        first_word: usize,
        detectors: &mut BitTable,
        observables: &mut BitTable,
    ) {
        self.sample_words(seed, first_word, detectors, observables);
    }
}

/// An owning [`PackedSyndromeSource`] pairing a [`BatchFrameSimulator`]
/// with its circuit, so full circuit-level Pauli-frame simulation can
/// feed the same tile pipeline as DEM sampling.
///
/// Cloning shares the circuit (an `Arc`) and gives the clone its own
/// simulator frames, so one source per producer thread is cheap.
#[derive(Debug, Clone)]
pub struct FrameSimSource {
    circuit: Arc<Circuit>,
    sim: BatchFrameSimulator,
}

impl FrameSimSource {
    /// Builds a source simulating `circuit`.
    pub fn new(circuit: &Circuit) -> FrameSimSource {
        FrameSimSource {
            sim: BatchFrameSimulator::new(circuit),
            circuit: Arc::new(circuit.clone()),
        }
    }

    /// The simulated circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }
}

impl PackedSyndromeSource for FrameSimSource {
    fn num_detectors(&self) -> usize {
        self.circuit.num_detectors()
    }

    fn num_observables(&self) -> usize {
        self.circuit.num_observables()
    }

    fn fill_words(
        &mut self,
        seed: u64,
        first_word: usize,
        detectors: &mut BitTable,
        observables: &mut BitTable,
    ) {
        self.sim
            .sample_words(&self.circuit, seed, first_word, detectors, observables);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_memory_z_circuit;
    use crate::noise::NoiseModel;
    use surface_code::SurfaceCode;

    #[test]
    fn layout_covers_every_shot_exactly_once() {
        for (shots, tile_words) in [(1usize, 1usize), (64, 1), (65, 1), (1000, 3), (8192, 128)] {
            let layout = TileLayout::new(shots, tile_words);
            let mut covered = 0usize;
            for (i, (first_word, n)) in layout.iter().enumerate() {
                assert_eq!(first_word, i * tile_words);
                assert_eq!(first_word * 64, covered);
                assert!(n > 0);
                assert!(n <= tile_words * 64);
                // Every tile but the last is word-aligned and full.
                if i + 1 < layout.num_tiles() {
                    assert_eq!(n, tile_words * 64);
                }
                covered = first_word * 64 + n;
            }
            assert_eq!(covered, shots, "shots {shots} tile_words {tile_words}");
        }
    }

    #[test]
    fn empty_layout_has_no_tiles() {
        assert_eq!(TileLayout::new(0, 4).num_tiles(), 0);
    }

    #[test]
    fn tiled_sampling_is_bit_identical_to_monolithic_for_both_sources() {
        let code = SurfaceCode::new(3).unwrap();
        let circuit = build_memory_z_circuit(&code, 3, NoiseModel::depolarizing(5e-3));
        let dem = circuit.detector_error_model();
        let shots = 300;
        let seed = 77;

        let mono_dem = BatchDemSampler::new(&dem).sample(seed, shots);
        let mut frame = FrameSimSource::new(&circuit);
        let mut mono_frame_det = BitTable::new(frame.num_detectors(), shots);
        let mut mono_frame_obs = BitTable::new(frame.num_observables(), shots);
        frame.fill_words(seed, 0, &mut mono_frame_det, &mut mono_frame_obs);

        for tile_words in [1usize, 2, 5] {
            let layout = TileLayout::new(shots, tile_words);
            let mut dem_src = BatchDemSampler::new(&dem);
            let mut frame_src = frame.clone();
            for t in 0..layout.num_tiles() {
                let dt = dem_src.sample_tile(seed, &layout, t);
                let ft = frame_src.sample_tile(seed, &layout, t);
                for local in 0..dt.num_shots() {
                    let global = dt.first_shot() + local;
                    for d in 0..dt.detectors().num_bits() {
                        assert_eq!(
                            dt.detectors().get(d, local),
                            mono_dem.0.get(d, global),
                            "dem tile_words {tile_words} tile {t} det {d} shot {global}"
                        );
                        assert_eq!(
                            ft.detectors().get(d, local),
                            mono_frame_det.get(d, global),
                            "frame tile_words {tile_words} tile {t} det {d} shot {global}"
                        );
                    }
                    assert_eq!(dt.observables().get(0, local), mono_dem.1.get(0, global));
                    assert_eq!(
                        ft.observables().get(0, local),
                        mono_frame_obs.get(0, global)
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "tile_words")]
    fn zero_tile_words_is_rejected() {
        TileLayout::new(10, 0);
    }
}
