//! Surface-code memory-experiment circuit construction.

use crate::circuit::{Circuit, DetectorCoord, Op};
use crate::noise::{NoiseMap, NoiseModel};
use surface_code::{Basis, SurfaceCode, SCHEDULE_STEPS};

/// Index layout of a memory circuit built by this module.
///
/// Qubit ids: data qubits occupy `0..d²` (in `row * d + col` order) and the
/// ancilla of stabilizer `s` (in [`SurfaceCode::stabilizers`] order) is
/// `d² + s`.
///
/// Detector ids: round-major. Round `t ∈ [0, rounds)` contributes one
/// detector per stabilizer of the memory basis (in lattice order); the
/// final data-measurement layer contributes one more per stabilizer. The
/// total is `(d² − 1) / 2 · (rounds + 1)`, which for `rounds = d` matches
/// the paper's Table 1 syndrome-vector length.
#[derive(Debug, Clone)]
pub struct MemoryCircuitLayout {
    /// Code distance.
    pub distance: usize,
    /// Number of syndrome-extraction rounds.
    pub rounds: usize,
    /// Number of decoded stabilizers (detectors per layer).
    pub z_stabilizers: usize,
    /// Total number of detectors, `z_stabilizers * (rounds + 1)`.
    pub num_detectors: usize,
}

impl MemoryCircuitLayout {
    /// The round (layer) a detector id belongs to; the final layer has index
    /// `rounds`.
    pub fn detector_round(&self, detector: usize) -> usize {
        detector / self.z_stabilizers
    }

    /// The per-layer stabilizer index of a detector id.
    pub fn detector_stabilizer(&self, detector: usize) -> usize {
        detector % self.z_stabilizers
    }
}

/// Builds a Z-basis memory experiment over `rounds` syndrome-extraction
/// rounds (the paper uses `rounds = d`).
///
/// The circuit resets all qubits, runs `rounds` rounds of full X+Z
/// stabilizer extraction under the given noise model, then measures every
/// data qubit in the Z basis. Detectors are declared for the Z stabilizers
/// only (they catch the X errors that can flip logical Z); observable 0 is
/// the logical-Z product over data column 0.
///
/// # Panics
///
/// Panics if `rounds == 0`.
pub fn build_memory_z_circuit(code: &SurfaceCode, rounds: usize, noise: NoiseModel) -> Circuit {
    build_memory_circuit(code, rounds, &NoiseMap::uniform(code, noise), Basis::Z)
}

/// Builds an X-basis memory experiment: data qubits are prepared in |+⟩,
/// X stabilizers are decoded (they catch Z errors), and the final
/// transversal measurement is in the X basis. Observable 0 is the
/// logical-X product over data row 0.
///
/// The paper runs Z memory experiments only, noting X and Z are
/// functionally equivalent under its symmetric noise model (§3.4); this
/// builder exists to *verify* that equivalence rather than assume it.
///
/// # Panics
///
/// Panics if `rounds == 0`.
pub fn build_memory_x_circuit(code: &SurfaceCode, rounds: usize, noise: NoiseModel) -> Circuit {
    build_memory_circuit(code, rounds, &NoiseMap::uniform(code, noise), Basis::X)
}

/// Builds a memory experiment in either basis with **per-qubit** noise
/// scaling — the paper's §8.2 flexibility scenario, where device error
/// rates vary across the chip and drift over time, and the decoder adapts
/// by reprogramming its Global Weight Table.
///
/// # Panics
///
/// Panics if `rounds == 0` or if the noise map was built for a different
/// code.
pub fn build_memory_circuit(
    code: &SurfaceCode,
    rounds: usize,
    noise: &NoiseMap,
    basis: Basis,
) -> Circuit {
    assert!(rounds > 0, "a memory experiment needs at least one round");
    let d = code.distance();
    let n_data = code.num_data_qubits();
    let n_stab = code.num_stabilizers();
    assert_eq!(
        noise.num_qubits(),
        n_data + n_stab,
        "noise map was built for a different code"
    );
    let mut c = Circuit::new(n_data + n_stab);

    let ancilla = |s: usize| (n_data + s) as u32;

    // Initial resets; X memory additionally rotates the data into |+⟩.
    for q in 0..n_data {
        c.push(Op::ResetZ(q as u32));
    }
    if basis == Basis::X {
        for q in 0..n_data {
            c.push(Op::H(q as u32));
        }
    }
    for s in 0..n_stab {
        c.push(Op::ResetZ(ancilla(s)));
    }

    // Records: per round, one measurement per stabilizer in lattice order.
    // rec(t, s) = t * n_stab + s; final data measurements follow.
    let mut prev_rec: Vec<Option<u32>> = vec![None; n_stab];

    for round in 0..rounds {
        c.push(Op::Tick);

        // Data-qubit idle errors at the start of each round.
        for q in 0..n_data {
            let p = noise.data(q);
            if p > 0.0 {
                c.push(Op::Depolarize1 { q: q as u32, p });
            }
        }
        // Reset errors on parity qubits (the reset happened at the end of
        // the previous round, or initially).
        for s in 0..n_stab {
            let p = noise.reset(n_data + s);
            if p > 0.0 {
                c.push(Op::Depolarize1 { q: ancilla(s), p });
            }
        }

        // Basis change for X stabilizers.
        for (s, _) in code.x_stabilizers() {
            c.push(Op::H(ancilla(s)));
        }

        // Four CNOT steps. X ancillas control their data targets; data
        // qubits control their Z ancillas.
        for step in 0..SCHEDULE_STEPS {
            for (s, stab) in code.stabilizers().iter().enumerate() {
                if let Some(q) = stab.schedule[step] {
                    let (control, target) = match stab.basis {
                        Basis::X => (ancilla(s), q as u32),
                        Basis::Z => (q as u32, ancilla(s)),
                    };
                    c.push(Op::Cnot(control, target));
                    let p = noise.gate(n_data + s, q);
                    if p > 0.0 {
                        c.push(Op::Depolarize2 {
                            a: control,
                            b: target,
                            p,
                        });
                    }
                }
            }
        }

        for (s, _) in code.x_stabilizers() {
            c.push(Op::H(ancilla(s)));
        }

        // Measurement errors, then measure and reset every ancilla.
        for s in 0..n_stab {
            let p = noise.measure(n_data + s);
            if p > 0.0 {
                c.push(Op::Depolarize1 { q: ancilla(s), p });
            }
        }
        let round_base = (round * n_stab) as u32;
        for s in 0..n_stab {
            c.push(Op::MeasureZ(ancilla(s)));
            c.push(Op::ResetZ(ancilla(s)));
        }

        // Detectors for the decoded basis: first round compares against
        // the deterministic preparation; later rounds compare consecutive
        // measurements.
        for (s, stab) in code.stabilizers_of(basis) {
            let rec = round_base + s as u32;
            let records = match prev_rec[s] {
                None => vec![rec],
                Some(prev) => vec![prev, rec],
            };
            c.push_detector(
                records,
                DetectorCoord {
                    row: stab.ancilla.row,
                    col: stab.ancilla.col,
                    round: round as i32,
                },
            );
            prev_rec[s] = Some(rec);
        }
    }

    // Final transversal measurement of the data qubits in the memory
    // basis (X measurement = H then Z measurement).
    c.push(Op::Tick);
    for q in 0..n_data {
        let p = noise.final_measure(q);
        if p > 0.0 {
            c.push(Op::Depolarize1 { q: q as u32, p });
        }
    }
    if basis == Basis::X {
        for q in 0..n_data {
            c.push(Op::H(q as u32));
        }
    }
    let data_base = (rounds * n_stab) as u32;
    for q in 0..n_data {
        c.push(Op::MeasureZ(q as u32));
    }

    // Final-layer detectors: each decoded stabilizer's value recomputed
    // from the data measurements must agree with its last ancilla
    // measurement.
    for (s, stab) in code.stabilizers_of(basis) {
        let mut records: Vec<u32> = stab.data.iter().map(|&q| data_base + q as u32).collect();
        records.push(prev_rec[s].expect("every decoded stabilizer was measured"));
        c.push_detector(
            records,
            DetectorCoord {
                row: stab.ancilla.row,
                col: stab.ancilla.col,
                round: rounds as i32,
            },
        );
    }

    // Observable 0: the logical operator of the memory basis.
    let support = match basis {
        Basis::Z => code.logical_z_support(),
        Basis::X => code.logical_x_support(),
    };
    let obs = support.into_iter().map(|q| data_base + q as u32).collect();
    c.push_observable(obs);

    debug_assert_eq!(
        c.num_detectors(),
        (d * d - 1) / 2 * (rounds + 1),
        "detector count must match the per-basis syndrome-vector length"
    );
    c
}

/// Returns the layout descriptor for a circuit built by
/// [`build_memory_z_circuit`] with the same parameters.
pub fn memory_layout(code: &SurfaceCode, rounds: usize) -> MemoryCircuitLayout {
    let z = (code.distance() * code.distance() - 1) / 2;
    MemoryCircuitLayout {
        distance: code.distance(),
        rounds,
        z_stabilizers: z,
        num_detectors: z * (rounds + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_count_matches_table_1() {
        for (d, expected) in [(3, 16), (5, 72), (7, 192), (9, 400)] {
            let code = SurfaceCode::new(d).unwrap();
            let c = build_memory_z_circuit(&code, d, NoiseModel::default());
            assert_eq!(c.num_detectors(), expected, "d={d}");
            assert_eq!(c.num_observables(), 1);
            let cx = build_memory_x_circuit(&code, d, NoiseModel::default());
            assert_eq!(cx.num_detectors(), expected, "d={d} (X basis)");
        }
    }

    #[test]
    fn record_count_is_rounds_times_stabs_plus_data() {
        let code = SurfaceCode::new(5).unwrap();
        let c = build_memory_z_circuit(&code, 5, NoiseModel::default());
        assert_eq!(c.num_records(), 5 * 24 + 25);
    }

    #[test]
    fn noiseless_circuit_has_no_noise_ops() {
        let code = SurfaceCode::new(3).unwrap();
        for basis in [Basis::Z, Basis::X] {
            let c = build_memory_circuit(
                &code,
                3,
                &NoiseMap::uniform(&code, NoiseModel::noiseless()),
                basis,
            );
            assert!(c.ops().iter().all(|op| !op.is_noise()));
            assert_eq!(c.num_error_components(), 0);
        }
    }

    #[test]
    fn noisy_circuit_component_count() {
        // Per round: 3·d² (data) + 3·(d²−1) (reset) + 15·#CNOT (gate)
        // + 3·(d²−1) (measure); final layer: 3·d².
        let code = SurfaceCode::new(3).unwrap();
        let c = build_memory_z_circuit(&code, 3, NoiseModel::depolarizing(1e-3));
        let cnots: usize = code.stabilizers().iter().map(|s| s.weight()).sum();
        let per_round = 3 * 9 + 3 * 8 + 15 * cnots + 3 * 8;
        assert_eq!(c.num_error_components(), 3 * per_round + 3 * 9);
    }

    #[test]
    fn x_memory_is_silent_without_noise() {
        use crate::frame::FrameSimulator;
        use rand::SeedableRng;
        let code = SurfaceCode::new(5).unwrap();
        let c = build_memory_x_circuit(&code, 5, NoiseModel::noiseless());
        let mut sim = FrameSimulator::new(&c);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let (dets, obs) = sim.sample(&c, &mut rng);
        assert!(dets.iter().all(|&b| !b));
        assert_eq!(obs, 0);
    }

    #[test]
    fn x_memory_observable_is_flipped_by_logical_z() {
        use crate::frame::FrameSimulator;
        use rand::SeedableRng;
        // A column of Z errors is logical Z: it flips logical X's outcome
        // without tripping any X-stabilizer detector. Inject via
        // H-conjugated X errors on the column right after preparation.
        let code = SurfaceCode::new(3).unwrap();
        let clean = build_memory_x_circuit(&code, 3, NoiseModel::noiseless());
        let mut c = Circuit::new(clean.num_qubits());
        let mut ticks = 0;
        for op in clean.ops() {
            c.push(*op);
            if let Op::Tick = op {
                ticks += 1;
                if ticks == 1 {
                    for &q in &code.logical_z_support() {
                        // Z = H X H.
                        c.push(Op::H(q as u32));
                        c.push(Op::XError {
                            q: q as u32,
                            p: 1.0,
                        });
                        c.push(Op::H(q as u32));
                    }
                }
            }
        }
        for det in clean.detectors() {
            c.push_detector(det.records.clone(), DetectorCoord::default());
        }
        for obs in clean.observables() {
            c.push_observable(obs.clone());
        }
        let mut sim = FrameSimulator::new(&c);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let (dets, obs) = sim.sample(&c, &mut rng);
        assert!(dets.iter().all(|&b| !b), "logical Z tripped an X detector");
        assert_eq!(obs, 1, "logical Z must flip the logical X outcome");
    }

    #[test]
    fn layout_round_and_stabilizer_decoding() {
        let code = SurfaceCode::new(5).unwrap();
        let layout = memory_layout(&code, 5);
        assert_eq!(layout.num_detectors, 72);
        assert_eq!(layout.detector_round(0), 0);
        assert_eq!(layout.detector_round(71), 5);
        assert_eq!(layout.detector_stabilizer(25), 1);
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn rejects_zero_rounds() {
        let code = SurfaceCode::new(3).unwrap();
        build_memory_z_circuit(&code, 0, NoiseModel::default());
    }

    #[test]
    #[should_panic(expected = "different code")]
    fn rejects_mismatched_noise_map() {
        let code3 = SurfaceCode::new(3).unwrap();
        let code5 = SurfaceCode::new(5).unwrap();
        let map = NoiseMap::uniform(&code3, NoiseModel::default());
        build_memory_circuit(&code5, 5, &map, Basis::Z);
    }

    #[test]
    fn first_round_detectors_have_one_record() {
        let code = SurfaceCode::new(3).unwrap();
        let c = build_memory_z_circuit(&code, 3, NoiseModel::default());
        let z = 4; // (9 − 1) / 2
        for det in &c.detectors()[..z] {
            assert_eq!(det.records.len(), 1);
        }
        for det in &c.detectors()[z..2 * z] {
            assert_eq!(det.records.len(), 2);
        }
        // Final layer: stabilizer weight + 1 records.
        for det in &c.detectors()[3 * z..] {
            assert!(det.records.len() == 3 || det.records.len() == 5);
        }
    }

    #[test]
    fn scaled_noise_map_changes_component_probabilities() {
        let code = SurfaceCode::new(3).unwrap();
        let mut map = NoiseMap::uniform(&code, NoiseModel::depolarizing(1e-3));
        map.scale_qubit(0, 5.0);
        let c = build_memory_circuit(&code, 3, &map, Basis::Z);
        let has_scaled = c
            .ops()
            .iter()
            .any(|op| matches!(op, Op::Depolarize1 { q: 0, p } if (*p - 5e-3).abs() < 1e-12));
        assert!(has_scaled, "qubit 0's data noise was not scaled");
    }
}
