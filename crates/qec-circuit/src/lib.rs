//! Clifford circuit IR, circuit-level depolarizing noise, Pauli-frame
//! Monte-Carlo sampling, and detector error models.
//!
//! This crate is the reproduction's substitute for the (heavily modified)
//! Stim framework used by the Astrea paper. It provides:
//!
//! * a small [`Circuit`] IR for the Clifford + measurement + noise
//!   operations that appear in surface-code syndrome extraction;
//! * [`build_memory_z_circuit`], which lays out a distance-`d` Z-basis
//!   memory experiment with the paper's circuit-level depolarizing noise
//!   model (§3.2);
//! * [`FrameSimulator`], an exact Pauli-frame Monte-Carlo sampler over the
//!   circuit — the ground-truth (but slower) way to sample syndromes;
//! * [`DetectorErrorModel`], extracted from a circuit by symbolically
//!   propagating every elementary error mechanism to the detectors and
//!   logical observables it flips, plus [`DemSampler`], a fast
//!   geometric-skip sampler over the model that is equivalent in
//!   distribution to the frame simulator;
//! * bit-packed, word-parallel bulk samplers — [`BitTable`] (64 shots per
//!   `u64` word), [`BatchFrameSimulator`], and [`BatchDemSampler`] — which
//!   advance 64 Monte-Carlo shots per bitwise operation and are the
//!   throughput path for LER estimation (see [`bittable`] for the layout
//!   and the per-word-column seeding contract);
//! * tile iteration over packed runs — [`TileLayout`], [`SyndromeTile`],
//!   and the [`PackedSyndromeSource`] trait unifying both packed samplers
//!   — the producer half of the streaming sampler→decoder pipeline (see
//!   [`tiles`] for the tile-level determinism contract).
//!
//! # Example: sampling syndromes for a distance-3 memory experiment
//!
//! ```
//! use qec_circuit::{build_memory_z_circuit, DemSampler, NoiseModel};
//! use surface_code::SurfaceCode;
//! use rand::SeedableRng;
//!
//! let code = SurfaceCode::new(3)?;
//! let circuit = build_memory_z_circuit(&code, 3, NoiseModel::depolarizing(1e-3));
//! let dem = circuit.detector_error_model();
//! let mut sampler = DemSampler::new(&dem);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let shot = sampler.sample(&mut rng);
//! assert!(shot.detectors.len() <= dem.num_detectors());
//! # Ok::<(), surface_code::InvalidDistance>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch_frame;
pub mod bittable;
mod builder;
mod circuit;
mod dem;
mod dem_io;
mod frame;
mod noise;
pub(crate) mod recordset;
mod repetition_builder;
mod stim_io;
mod tableau;
pub mod tiles;

pub use batch_frame::BatchFrameSimulator;
pub use bittable::{column_seed, BitTable};
pub use builder::{
    build_memory_circuit, build_memory_x_circuit, build_memory_z_circuit, memory_layout,
    MemoryCircuitLayout,
};
pub use circuit::{Circuit, Detector, DetectorCoord, Op};
pub use dem::{BatchDemSampler, DemSampler, DetectorErrorModel, ErrorMechanism, Shot};
pub use dem_io::ParseDemError;
pub use frame::FrameSimulator;
pub use noise::{NoiseMap, NoiseModel};
pub use repetition_builder::build_repetition_memory_circuit;
pub use stim_io::ParseStimError;
pub use tableau::TableauSimulator;
pub use tiles::{FrameSimSource, PackedSyndromeSource, SyndromeTile, TileLayout};
