//! Bridge tests between the scalar and bit-packed samplers.
//!
//! Deterministic half: under fixed error masks (`XError` with `p = 1`
//! spliced into otherwise noiseless circuits), error propagation has no
//! randomness, so every packed lane must match the scalar simulator
//! bit-for-bit — for d ∈ {3, 5, 7} and several mask shapes.
//!
//! Statistical half: under real noise the packed samplers draw a
//! different (word-column-seeded) RNG stream than the scalar ones, so
//! outcomes can only agree in distribution; per-detector trigger rates
//! must match within Monte-Carlo error at p = 1e-2.

use qec_circuit::{
    build_memory_z_circuit, BatchDemSampler, BatchFrameSimulator, Circuit, DemSampler,
    DetectorErrorModel, ErrorMechanism, FrameSimulator, NoiseModel, Op, Shot,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use surface_code::SurfaceCode;

/// Rebuilds `clean` with deterministic `XError { p: 1.0 }` ops on the
/// given qubits spliced in after the `after_tick`-th `Tick`, keeping all
/// detector/observable annotations.
fn splice_x_errors(clean: &Circuit, after_tick: usize, qubits: &[u32]) -> Circuit {
    let mut c = Circuit::new(clean.num_qubits());
    let mut ticks = 0;
    for op in clean.ops() {
        c.push(*op);
        if let Op::Tick = op {
            ticks += 1;
            if ticks == after_tick {
                for &q in qubits {
                    c.push(Op::XError { q, p: 1.0 });
                }
            }
        }
    }
    for det in clean.detectors() {
        c.push_detector(det.records.clone(), det.coord);
    }
    for obs in clean.observables() {
        c.push_observable(obs.clone());
    }
    c
}

#[test]
fn packed_frame_matches_scalar_bit_for_bit_under_fixed_masks() {
    for d in [3usize, 5, 7] {
        let code = SurfaceCode::new(d).unwrap();
        let clean = build_memory_z_circuit(&code, d, NoiseModel::noiseless());
        let nq = clean.num_qubits() as u32;
        // Several deterministic mask shapes: single qubit, a spread-out
        // triple, and a dense stripe, at different rounds.
        let masks: Vec<(usize, Vec<u32>)> = vec![
            (1, vec![0]),
            (2, vec![1, nq / 2, nq - 1]),
            (1, (0..nq).step_by(3).collect()),
        ];
        for (after_tick, qubits) in masks {
            let c = splice_x_errors(&clean, after_tick, &qubits);
            let mut scalar = FrameSimulator::new(&c);
            // The circuit is deterministic; the RNG is never consulted
            // for an outcome.
            let (want_dets, want_obs) = scalar.sample(&c, &mut StdRng::seed_from_u64(0));
            let mut packed = BatchFrameSimulator::new(&c);
            let shots = 130;
            let (det, obs) = packed.sample(&c, 99, shots);
            for s in 0..shots {
                for (i, &w) in want_dets.iter().enumerate() {
                    assert_eq!(
                        det.get(i, s),
                        w,
                        "d={d} mask {qubits:?}: detector {i} shot {s}"
                    );
                }
                for bit in 0..c.num_observables() {
                    assert_eq!(
                        obs.get(bit, s),
                        want_obs >> bit & 1 == 1,
                        "d={d} mask {qubits:?}: observable {bit} shot {s}"
                    );
                }
            }
        }
    }
}

#[test]
fn packed_dem_matches_scalar_bit_for_bit_under_deterministic_mechanisms() {
    // Circuit-derived: one deterministic X error yields a p = 1 mechanism.
    for d in [3usize, 5, 7] {
        let code = SurfaceCode::new(d).unwrap();
        let clean = build_memory_z_circuit(&code, d, NoiseModel::noiseless());
        let c = splice_x_errors(&clean, 1, &[0]);
        let dem = c.detector_error_model();
        assert!(
            dem.mechanisms().iter().all(|m| m.probability == 1.0),
            "d={d}: expected only deterministic mechanisms"
        );
        let mut scalar = DemSampler::new(&dem);
        let mut shot = Shot::default();
        scalar.sample_into(&mut StdRng::seed_from_u64(0), &mut shot);
        let batch = BatchDemSampler::new(&dem);
        let shots = 100;
        let (det, obs) = batch.sample(55, shots);
        for s in 0..shots {
            let fired: Vec<u32> = (0..dem.num_detectors())
                .filter(|&i| det.get(i, s))
                .map(|i| i as u32)
                .collect();
            assert_eq!(fired, shot.detectors, "d={d} shot {s}");
            let mask: u32 = (0..dem.num_observables())
                .map(|b| u32::from(obs.get(b, s)) << b)
                .sum();
            assert_eq!(mask, shot.observables, "d={d} shot {s}");
        }
    }

    // Hand-built: overlapping deterministic mechanisms must XOR-cancel
    // identically in both samplers.
    let dem = DetectorErrorModel::from_mechanisms(
        4,
        2,
        vec![
            ErrorMechanism {
                detectors: vec![0, 1],
                observables: 0b01,
                probability: 1.0,
            },
            ErrorMechanism {
                detectors: vec![1, 3],
                observables: 0b11,
                probability: 1.0,
            },
        ],
    );
    let mut scalar = DemSampler::new(&dem);
    let want = scalar.sample(&mut StdRng::seed_from_u64(0)).clone();
    assert_eq!(want.detectors, vec![0, 3]);
    assert_eq!(want.observables, 0b10);
    let batch = BatchDemSampler::new(&dem);
    let (det, obs) = batch.sample(7, 70);
    for s in 0..70 {
        let fired: Vec<u32> = (0..4)
            .filter(|&i| det.get(i, s))
            .map(|i| i as u32)
            .collect();
        assert_eq!(fired, want.detectors, "shot {s}");
        assert!(!obs.get(0, s));
        assert!(obs.get(1, s));
    }
}

/// Asserts two per-detector firing-rate vectors agree within a 5-sigma
/// binomial tolerance, mirroring the scalar DEM-vs-frame statistical test.
fn assert_rates_close(a: &[f64], b: &[f64], shots: usize, what: &str) {
    for (i, (&f, &s)) in a.iter().zip(b).enumerate() {
        let sigma = (f.max(s).max(1.0 / shots as f64) / shots as f64).sqrt();
        assert!(
            (f - s).abs() < 5.0 * sigma + 1e-4,
            "{what}: detector {i} rates {f} vs {s}"
        );
    }
}

#[test]
fn packed_frame_statistics_match_scalar_at_high_noise() {
    let p = 1e-2;
    let code = SurfaceCode::new(3).unwrap();
    let circuit = build_memory_z_circuit(&code, 3, NoiseModel::depolarizing(p));
    let shots = 40_000;

    let mut scalar = FrameSimulator::new(&circuit);
    let mut rng = StdRng::seed_from_u64(21);
    let mut scalar_counts = vec![0u32; circuit.num_detectors()];
    let mut scalar_obs = 0u32;
    for _ in 0..shots {
        let (dets, obs) = scalar.sample(&circuit, &mut rng);
        for (i, &b) in dets.iter().enumerate() {
            scalar_counts[i] += b as u32;
        }
        scalar_obs += obs & 1;
    }

    let mut packed = BatchFrameSimulator::new(&circuit);
    let (det, obs) = packed.sample(&circuit, 22, shots);
    let packed_rates: Vec<f64> = (0..circuit.num_detectors())
        .map(|i| det.count_row_ones(i) as f64 / shots as f64)
        .collect();
    let scalar_rates: Vec<f64> = scalar_counts
        .iter()
        .map(|&c| c as f64 / shots as f64)
        .collect();
    assert_rates_close(
        &scalar_rates,
        &packed_rates,
        shots,
        "frame packed-vs-scalar",
    );

    let (f, s) = (
        scalar_obs as f64 / shots as f64,
        obs.count_row_ones(0) as f64 / shots as f64,
    );
    assert!((f - s).abs() < 0.01, "obs rates: scalar {f}, packed {s}");
}

#[test]
fn packed_dem_statistics_match_scalar_at_high_noise() {
    let p = 1e-2;
    let code = SurfaceCode::new(3).unwrap();
    let circuit = build_memory_z_circuit(&code, 3, NoiseModel::depolarizing(p));
    let dem = circuit.detector_error_model();
    let shots = 40_000;

    let mut scalar = DemSampler::new(&dem);
    let mut rng = StdRng::seed_from_u64(31);
    let mut shot = Shot::default();
    let mut scalar_counts = vec![0u32; dem.num_detectors()];
    let mut scalar_obs = 0u32;
    for _ in 0..shots {
        scalar.sample_into(&mut rng, &mut shot);
        for &d in &shot.detectors {
            scalar_counts[d as usize] += 1;
        }
        scalar_obs += shot.observables & 1;
    }

    let packed = BatchDemSampler::new(&dem);
    let (det, obs) = packed.sample(32, shots);
    let packed_rates: Vec<f64> = (0..dem.num_detectors())
        .map(|i| det.count_row_ones(i) as f64 / shots as f64)
        .collect();
    let scalar_rates: Vec<f64> = scalar_counts
        .iter()
        .map(|&c| c as f64 / shots as f64)
        .collect();
    assert_rates_close(&scalar_rates, &packed_rates, shots, "dem packed-vs-scalar");

    let (f, s) = (
        scalar_obs as f64 / shots as f64,
        obs.count_row_ones(0) as f64 / shots as f64,
    );
    assert!((f - s).abs() < 0.01, "obs rates: scalar {f}, packed {s}");
}
