//! Experiment harness for the Astrea reproduction: memory experiments,
//! parallel Monte-Carlo logical-error-rate estimation, the analytical
//! Hamming-weight model, and the stratified small-LER estimator from the
//! paper's Appendix A.
//!
//! The `astrea-exp` binary in this crate regenerates every table and
//! figure of the paper's evaluation; see `DESIGN.md` at the workspace root
//! for the experiment index and `EXPERIMENTS.md` for recorded results.
//!
//! ```
//! use astrea_experiments::{ExperimentContext, estimate_ler};
//! use blossom_mwpm::MwpmDecoder;
//!
//! let ctx = ExperimentContext::new(3, 1e-3);
//! let result = estimate_ler(&ctx, 20_000, 2, 7, &|c| Box::new(MwpmDecoder::new(c.gwt())));
//! assert!(result.ler() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod hamming;
mod harness;
pub mod realtime;
pub mod report;
pub mod stratified;

pub use astrea_core::pipeline::PipelineCounters;
pub use harness::{
    decode_batch_ler, estimate_ler, estimate_ler_barrier, estimate_ler_streamed,
    estimate_ler_streamed_counted, mwpm_factory, sample_batch, sample_batch_scalar, DecoderFactory,
    ExperimentContext, LatencyStats, LerResult, PipelineConfig, SyndromeSource,
};
