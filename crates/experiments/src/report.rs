//! Plain-text table formatting for the experiment runners, mirroring the
//! layout of the paper's tables and figure series.

/// Formats a probability or rate in compact scientific notation
/// (`8.1e-6`), or `0` exactly.
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    format!("{x:.1e}")
}

/// Formats a probability with three significant digits for larger values
/// and scientific notation below 0.01 (the paper's Table 2 style).
pub fn prob(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x >= 0.01 {
        format!("{x:.2}")
    } else {
        sci(x)
    }
}

/// Renders a table with a header row, column alignment, and `|`
/// separators.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        out.push('|');
        for (w, c) in widths.iter().zip(cells) {
            out.push_str(&format!(" {c:>w$} |", w = w));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{:-<w$}|", "", w = w + 2));
    }
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Parses a trial-count argument that may use scientific notation
/// (`1e6`, `2.5e7`) or plain integers.
pub fn parse_trials(s: &str) -> Result<u64, String> {
    if let Ok(n) = s.parse::<u64>() {
        return Ok(n);
    }
    match s.parse::<f64>() {
        Ok(x) if (1.0..1e18).contains(&x) => Ok(x as u64),
        _ => Err(format!("invalid trial count: {s}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_formats() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(8.1e-6), "8.1e-6");
        assert_eq!(sci(0.5), "5.0e-1");
    }

    #[test]
    fn prob_switches_notation() {
        assert_eq!(prob(0.99), "0.99");
        assert_eq!(prob(0.13), "0.13");
        assert_eq!(prob(4.2e-5), "4.2e-5");
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["d", "LER"],
            &[
                vec!["3".into(), "8.1e-6".into()],
                vec!["5".into(), "1.3e-7".into()],
            ],
        );
        assert!(t.contains("| d |"));
        assert!(t.lines().count() == 4);
        let widths: Vec<usize> = t.lines().map(str::len).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "ragged table:\n{t}"
        );
    }

    #[test]
    fn parse_trials_accepts_scientific() {
        assert_eq!(parse_trials("1000").unwrap(), 1000);
        assert_eq!(parse_trials("1e6").unwrap(), 1_000_000);
        assert_eq!(parse_trials("2.5e3").unwrap(), 2500);
        assert!(parse_trials("abc").is_err());
        assert!(parse_trials("-5").is_err());
    }
}
