//! Parallel Monte-Carlo memory experiments, built on the streaming
//! sampler→decoder pipeline in [`astrea_core::pipeline`], the batched
//! decode engine in [`astrea_core::batch`], and the word-parallel
//! samplers in `qec-circuit`.
//!
//! [`estimate_ler`] runs the streamed path: producer threads cut the run
//! into packed tiles ([`qec_circuit::TileLayout`]) and feed them over a
//! bounded channel to consumers that screen shots word-parallel and
//! decode only the hard ones, so sampling and decoding overlap
//! end-to-end. The barrier reference path ([`estimate_ler_barrier`]:
//! sample everything, then decode everything) is kept for benchmarking
//! and differential testing — the two are bit-identical by construction.
//!
//! Sampling and decoding are both deterministic in `seed` *alone*: the
//! packed samplers seed every 64-shot word column from
//! [`qec_circuit::column_seed`]`(seed, word)` (the scalar reference path
//! seeds every shot from [`shot_seed`]`(seed, shot_index)`) and all
//! counters merge order-independently, so results are bit-identical for
//! any thread count, producer/consumer split, and tile size.

use astrea_core::batch::{decode_slice, shot_seed, SyndromeBatch, SyndromeBatchBuilder};
use astrea_core::pipeline::{
    consume_tiles, tile_channel, PipelineCounters, StreamOutcome, TileQueue, TileScratch,
    DEFAULT_CHANNEL_DEPTH, DEFAULT_HARD_CACHE_ENTRIES, DEFAULT_TILE_WORDS,
};
use decoding_graph::{DecodeScratch, Decoder, DecodingContext};
use qec_circuit::tiles::{FrameSimSource, PackedSyndromeSource, TileLayout};
use qec_circuit::{BatchDemSampler, BitTable, DemSampler, NoiseModel, Shot};
use rand::rngs::StdRng;
use rand::SeedableRng;
use surface_code::SurfaceCode;

pub use astrea_core::LatencyStats;

/// A decoding context plus the experiment parameters that produced it.
///
/// Building one is expensive (detector-error-model extraction and all-pairs
/// Dijkstra); reuse it across every decoder and trial count for the same
/// `(distance, p)` point.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// Code distance.
    pub distance: usize,
    /// Physical error rate.
    pub physical_error_rate: f64,
    ctx: DecodingContext,
}

impl ExperimentContext {
    /// Builds the context for a `(d, p)` memory experiment with `d` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `distance` is not an odd number ≥ 3 or `p` is not a
    /// probability.
    pub fn new(distance: usize, p: f64) -> ExperimentContext {
        ExperimentContext::with_source(distance, p, decoding_graph::WeightSource::Auto)
    }

    /// [`Self::new`] with an explicit weight backend: force
    /// [`decoding_graph::WeightSource::Gwt`] for table-backed decoders at
    /// any distance, or [`decoding_graph::WeightSource::Local`] to run a
    /// small distance GWT-free (large distances go GWT-free automatically
    /// under `Auto` — see [`decoding_graph::GWT_AUTO_BUDGET_BYTES`]).
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::new`].
    pub fn with_source(
        distance: usize,
        p: f64,
        source: decoding_graph::WeightSource,
    ) -> ExperimentContext {
        let code = SurfaceCode::new(distance).expect("valid surface code distance");
        let ctx =
            DecodingContext::for_memory_experiment_with(&code, NoiseModel::depolarizing(p), source);
        ExperimentContext {
            distance,
            physical_error_rate: p,
            ctx,
        }
    }

    /// Builds the context from an arbitrary annotated circuit — e.g. an
    /// X-basis memory experiment, a non-uniform [`qec_circuit::NoiseMap`]
    /// circuit, or a custom round count. `distance` and `p` are recorded
    /// for reporting only.
    pub fn from_circuit(
        distance: usize,
        p: f64,
        circuit: &qec_circuit::Circuit,
    ) -> ExperimentContext {
        ExperimentContext {
            distance,
            physical_error_rate: p,
            ctx: DecodingContext::from_circuit(circuit),
        }
    }

    /// The underlying decoding context.
    pub fn decoding(&self) -> &DecodingContext {
        &self.ctx
    }

    /// Shorthand for the Global Weight Table.
    ///
    /// # Panics
    ///
    /// Panics when the context is GWT-free (see
    /// [`DecodingContext::gwt`]); backend-agnostic callers should go
    /// through [`Self::decoding`] and a `for_context` constructor.
    pub fn gwt(&self) -> &decoding_graph::GlobalWeightTable {
        self.ctx.gwt()
    }

    /// The resolved weight backend of the underlying context.
    pub fn weight_source(&self) -> decoding_graph::WeightSource {
        self.ctx.weight_source()
    }

    /// Shorthand for the matching graph.
    pub fn graph(&self) -> &decoding_graph::MatchingGraph {
        self.ctx.graph()
    }

    /// Shorthand for the detector error model.
    pub fn dem(&self) -> &qec_circuit::DetectorErrorModel {
        self.ctx.dem()
    }
}

/// A thread-safe factory producing one decoder instance per worker thread.
pub type DecoderFactory<'a> = dyn Fn(&'a ExperimentContext) -> Box<dyn Decoder + 'a> + Sync + 'a;

/// A [`DecoderFactory`] producing backend-agnostic MWPM decoders with an
/// explicit deep-tail engine — the one-liner opt-in that lets batch,
/// pipeline, and serving runs select
/// [`DeepBackend::GraphPd`](blossom_mwpm::DeepBackend) (or pin
/// `Ondemand`/`Staged`) without hand-writing a closure:
///
/// ```ignore
/// let f = mwpm_factory(DeepBackend::GraphPd);
/// let (res, counters) = estimate_ler_streamed_counted(&ctx, n, seed, &f, cfg);
/// ```
pub fn mwpm_factory(
    backend: blossom_mwpm::DeepBackend,
) -> impl for<'a> Fn(&'a ExperimentContext) -> Box<dyn Decoder + 'a> + Sync {
    move |c: &ExperimentContext| {
        Box::new(blossom_mwpm::MwpmDecoder::for_context(c.decoding()).with_deep_backend(backend))
            as Box<dyn Decoder + '_>
    }
}

/// Which packed sampler feeds the pipeline's producers.
///
/// Both honour the `column_seed` determinism contract, so either source
/// yields thread/tile-invariant runs; their shot *streams* differ (they
/// consume randomness differently) but sample the same distribution —
/// cross-validating them end-to-end is exactly the point of offering
/// both (see ROADMAP item 3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SyndromeSource {
    /// Geometric-skip sampling over the extracted detector error model —
    /// the fast path.
    #[default]
    Dem,
    /// Full circuit-level Pauli-frame simulation
    /// ([`qec_circuit::BatchFrameSimulator`]) — slower, but exercises the
    /// whole circuit rather than the extracted model.
    FrameSim,
}

impl SyndromeSource {
    /// Builds one producer-owned sampler over the context's model or
    /// circuit.
    pub fn sampler(&self, ctx: &ExperimentContext) -> Box<dyn PackedSyndromeSource> {
        match self {
            SyndromeSource::Dem => Box::new(BatchDemSampler::new(ctx.dem())),
            SyndromeSource::FrameSim => Box::new(FrameSimSource::new(ctx.decoding().circuit())),
        }
    }
}

/// Shape of the streamed [`estimate_ler_streamed`] pipeline.
///
/// Every field only affects *performance*: the result is bit-identical
/// for any tile size, producer count, consumer count, and channel depth
/// (per-word-column seeding plus order-independent accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Packed words per tile (≤ 64·`tile_words` shots each).
    pub tile_words: usize,
    /// Sampler (producer) threads.
    pub producers: usize,
    /// Decoder (consumer) threads.
    pub consumers: usize,
    /// Bound on tiles buffered between producers and consumers.
    pub channel_depth: usize,
    /// Which packed sampler produces the tiles.
    pub source: SyndromeSource,
    /// Per-consumer capacity of the hard-syndrome prediction cache
    /// (0 disables it). Purely a performance knob: cached predictions
    /// replay the decoder's own, so results are bit-identical either
    /// way.
    pub hard_cache_entries: usize,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig::for_threads(1)
    }
}

impl PipelineConfig {
    /// The default split of a `threads`-sized budget: all `threads` as
    /// consumers (decoding dominates once sampling is packed) plus a
    /// quarter as many producers, which overlap with consumers blocking
    /// on the bounded channel rather than oversubscribing the CPU.
    ///
    /// The budget is clamped to the machine's available parallelism
    /// first: threads beyond physical cores cannot overlap anything and
    /// only add context-switch and allocation overhead to a
    /// latency-sensitive loop (results are bit-identical either way).
    pub fn for_threads(threads: usize) -> PipelineConfig {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let threads = threads.max(1).min(cores);
        PipelineConfig {
            tile_words: DEFAULT_TILE_WORDS,
            producers: (threads / 4).max(1),
            consumers: threads,
            channel_depth: DEFAULT_CHANNEL_DEPTH,
            source: SyndromeSource::Dem,
            hard_cache_entries: DEFAULT_HARD_CACHE_ENTRIES,
        }
    }

    /// Same shape, different syndrome source.
    pub fn with_source(mut self, source: SyndromeSource) -> PipelineConfig {
        self.source = source;
        self
    }

    /// Same shape, different hard-syndrome cache capacity (0 disables).
    pub fn with_hard_cache(mut self, entries: usize) -> PipelineConfig {
        self.hard_cache_entries = entries;
        self
    }
}

/// The outcome of a logical-error-rate estimation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LerResult {
    /// Monte-Carlo trials run.
    pub trials: u64,
    /// Trials where the decoder's prediction missed the actual logical
    /// flip (logical errors).
    pub failures: u64,
    /// Trials the decoder declined to decode in real time (Astrea beyond
    /// its Hamming-weight ceiling, Clique deferrals). These still count as
    /// failures when the uncorrected observable flipped.
    pub deferred: u64,
    /// Latency statistics over the modeled hardware cycles.
    pub latency: LatencyStats,
}

impl LerResult {
    /// The logical error rate per `d`-round logical cycle.
    pub fn ler(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.failures as f64 / self.trials as f64
        }
    }

    /// Binomial standard error of [`LerResult::ler`].
    pub fn std_err(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        let p = self.ler();
        (p * (1.0 - p) / self.trials as f64).sqrt()
    }
}

/// Samples `trials` shots from the context's detector error model into a
/// [`SyndromeBatch`] with the bit-packed, word-parallel
/// [`BatchDemSampler`] (64 shots per bitwise op), splitting the work
/// across `threads` threads at word boundaries.
///
/// Word column `w` (shots `64w .. 64w + 64`) is drawn from a fresh RNG
/// seeded with [`qec_circuit::column_seed`]`(seed, w)`, threads take
/// word-aligned chunks, and the per-thread partial batches are
/// concatenated in index order — so the batch depends only on `(trials,
/// seed)`, never on the thread count, and the first `n` shots agree with
/// any longer run with the same seed.
///
/// The packed stream intentionally differs from the per-shot stream of
/// [`sample_batch_scalar`]; both are statistically identical samples of
/// the model (see the `packed_bridge` tests in `qec-circuit`).
pub fn sample_batch(
    ctx: &ExperimentContext,
    trials: u64,
    threads: usize,
    seed: u64,
) -> SyndromeBatch {
    let threads = threads.max(1);
    let n = trials as usize;
    let total_words = n.div_ceil(64);
    if total_words == 0 {
        return SyndromeBatch::builder().finish();
    }
    let words_per_chunk = total_words.div_ceil(threads).max(1);
    let sampler = BatchDemSampler::new(ctx.dem());
    let parts: Vec<SyndromeBatchBuilder> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for first_word in (0..total_words).step_by(words_per_chunk) {
            let last_word = (first_word + words_per_chunk).min(total_words);
            let sampler = &sampler;
            handles.push(scope.spawn(move || {
                // Tile the chunk: sampling writes and conversion reads
                // both sweep the whole packed table, so a 128-word tile
                // (8192 shots, ~200 KB at d = 7) keeps the working set
                // cache-resident instead of streaming through DRAM. The
                // column-seeding contract makes tiling invisible in the
                // output.
                const TILE_WORDS: usize = 128;
                let mut builder = SyndromeBatchBuilder::default();
                let mut det = BitTable::new(sampler.num_detectors(), TILE_WORDS * 64);
                let mut obs = BitTable::new(sampler.num_observables(), TILE_WORDS * 64);
                let mut w = first_word;
                while w < last_word {
                    let tile_end = (w + TILE_WORDS).min(last_word);
                    let tile_shots = (tile_end * 64).min(n) - w * 64;
                    if tile_shots < TILE_WORDS * 64 {
                        det = BitTable::new(sampler.num_detectors(), tile_shots);
                        obs = BitTable::new(sampler.num_observables(), tile_shots);
                    }
                    sampler.sample_words(seed, w, &mut det, &mut obs);
                    builder.push_packed(&det, &obs);
                    w = tile_end;
                }
                builder
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("sampler thread panicked"))
            .collect()
    });
    let mut all = SyndromeBatch::builder();
    for part in parts {
        all.append(part);
    }
    all.finish()
}

/// The scalar (shot-at-a-time) reference sampler the packed
/// [`sample_batch`] replaced: one fresh RNG per shot from
/// [`shot_seed`]`(seed, i)`, one [`DemSampler::sample_into`] call per
/// shot.
///
/// Kept as the baseline for the `sampling_throughput` bench and for
/// statistical cross-checks; its stream differs from the packed one, but
/// both are exact samples of the same model and are thread-count- and
/// shot-count-invariant.
pub fn sample_batch_scalar(
    ctx: &ExperimentContext,
    trials: u64,
    threads: usize,
    seed: u64,
) -> SyndromeBatch {
    let threads = threads.max(1);
    let n = trials as usize;
    let chunk = n.div_ceil(threads).max(1);
    let parts: Vec<SyndromeBatchBuilder> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for start in (0..n).step_by(chunk) {
            let end = (start + chunk).min(n);
            let dem = ctx.dem();
            handles.push(scope.spawn(move || {
                let mut sampler = DemSampler::new(dem);
                let mut builder = SyndromeBatchBuilder::default();
                let mut shot = Shot::default();
                for i in start..end {
                    let mut rng = StdRng::seed_from_u64(shot_seed(seed, i as u64));
                    sampler.sample_into(&mut rng, &mut shot);
                    builder.push(&shot.detectors, shot.observables);
                }
                builder
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("sampler thread panicked"))
            .collect()
    });
    let mut all = SyndromeBatch::builder();
    for part in parts {
        all.append(part);
    }
    all.finish()
}

/// Decodes a prepared batch with scoped worker threads, one decoder from
/// `factory` plus one scratch arena per worker, and folds the outcome
/// into a [`LerResult`].
///
/// This is the borrowed-factory twin of
/// [`astrea_core::BatchDecoder::decode_batch`]: both run the shared
/// [`decode_slice`] loop over contiguous shot ranges, so their accounting
/// is identical; this one allows decoders that borrow from the
/// experiment context (at the cost of spawning threads per call).
pub fn decode_batch_ler<'a>(
    ctx: &'a ExperimentContext,
    batch: &SyndromeBatch,
    threads: usize,
    factory: &DecoderFactory<'a>,
) -> LerResult {
    let threads = threads.max(1);
    let n = batch.len();
    let mut result = LerResult {
        trials: n as u64,
        ..LerResult::default()
    };
    if n == 0 {
        return result;
    }
    let chunk = n.div_ceil(threads);
    let outcomes = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for start in (0..n).step_by(chunk) {
            let end = (start + chunk).min(n);
            handles.push(scope.spawn(move || {
                let mut decoder = factory(ctx);
                let mut scratch = DecodeScratch::new();
                decode_slice(decoder.as_mut(), &mut scratch, batch, start..end)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("decode worker panicked"))
            .collect::<Vec<_>>()
    });
    for outcome in &outcomes {
        result.failures += outcome.failures;
        result.deferred += outcome.deferred;
        result.latency.merge(&outcome.stats);
    }
    result
}

/// Estimates the logical error rate with the streaming pipeline:
/// producers sample packed tiles and consumers screen + decode them
/// concurrently, overlapping sampling and decoding end-to-end.
///
/// Producer `p` samples tiles `p, p + P, p + 2P, …` of the
/// [`TileLayout`] and sends them over a bounded channel; consumers pull
/// from a shared [`TileQueue`] (dynamic load balancing), screen each tile
/// word-parallel, and decode only the Hamming-weight ≥ 3 shots with the
/// real decoder ([`astrea_core::pipeline::decode_tile`]). The result is
/// bit-identical to [`estimate_ler_barrier`] for every `config`: tiles
/// inherit the `column_seed` contract, screening replays the decoder
/// exactly, and all accounting merges order-independently.
pub fn estimate_ler_streamed<'a>(
    ctx: &'a ExperimentContext,
    trials: u64,
    seed: u64,
    factory: &DecoderFactory<'a>,
    config: PipelineConfig,
) -> LerResult {
    estimate_ler_streamed_counted(ctx, trials, seed, factory, config).0
}

/// [`estimate_ler_streamed`] plus the summed per-stage
/// [`PipelineCounters`] from every consumer — how many shots the screen,
/// the closed forms, the hard-syndrome cache, and the DP/blossom tail
/// each absorbed. The counters describe stages that only exist on the
/// streamed path, so they ride alongside the [`LerResult`] instead of
/// inside it (which stays comparable to the barrier path's).
pub fn estimate_ler_streamed_counted<'a>(
    ctx: &'a ExperimentContext,
    trials: u64,
    seed: u64,
    factory: &DecoderFactory<'a>,
    config: PipelineConfig,
) -> (LerResult, PipelineCounters) {
    let mut result = LerResult {
        trials,
        ..LerResult::default()
    };
    if trials == 0 {
        return (result, PipelineCounters::default());
    }
    let layout = TileLayout::new(trials as usize, config.tile_words.max(1));
    let producers = config.producers.max(1).min(layout.num_tiles());
    let consumers = config.consumers.max(1);
    let (tx, rx) = tile_channel(config.channel_depth);
    let queue = TileQueue::new(rx);
    let (outcome, counters) = std::thread::scope(|scope| {
        for p in 0..producers {
            let tx = tx.clone();
            let mut source = config.source.sampler(ctx);
            scope.spawn(move || {
                let mut t = p;
                while t < layout.num_tiles() {
                    let tile = source.sample_tile(seed, &layout, t);
                    // A send error means every consumer is gone (one
                    // panicked); stop producing and let join surface it.
                    if tx.send(tile).is_err() {
                        return;
                    }
                    t += producers;
                }
            });
        }
        // Drop the original sender so the queue drains to `None` once the
        // producers finish.
        drop(tx);
        let handles: Vec<_> = (0..consumers)
            .map(|_| {
                let queue = queue.clone();
                scope.spawn(move || {
                    let mut decoder = factory(ctx);
                    let mut scratch = DecodeScratch::new();
                    let mut tile_scratch = TileScratch::with_hard_cache(config.hard_cache_entries);
                    let out =
                        consume_tiles(decoder.as_mut(), &mut scratch, &mut tile_scratch, &queue);
                    (out, *tile_scratch.counters())
                })
            })
            .collect();
        let mut total = StreamOutcome::default();
        let mut counters = PipelineCounters::default();
        for h in handles {
            let (out, c) = h.join().expect("decode consumer panicked");
            total.merge(&out);
            counters.merge(&c);
        }
        (total, counters)
    });
    result.failures = outcome.failures;
    result.deferred = outcome.deferred;
    result.latency = outcome.stats;
    (result, counters)
}

/// The barrier reference path: sample *everything* into a
/// [`SyndromeBatch`], then decode it — no overlap, full per-shot sparse
/// materialization.
///
/// Kept as the differential-testing and benchmarking reference for
/// [`estimate_ler`]; the streamed path reproduces it bit-identically.
pub fn estimate_ler_barrier<'a>(
    ctx: &'a ExperimentContext,
    trials: u64,
    threads: usize,
    seed: u64,
    factory: &DecoderFactory<'a>,
) -> LerResult {
    let batch = sample_batch(ctx, trials, threads, seed);
    decode_batch_ler(ctx, &batch, threads, factory)
}

/// Estimates the logical error rate of a decoder by running `trials`
/// memory experiments across `threads` worker threads.
///
/// Runs the streaming pipeline ([`estimate_ler_streamed`] with
/// [`PipelineConfig::for_threads`]): shots are sampled from the detector
/// error model with the word-parallel packed sampler into fixed-size
/// tiles that stream straight into screening consumers — sampling and
/// decoding overlap, and only Hamming-weight ≥ 3 shots pay a real decoder
/// call. A failure is counted whenever the predicted observable flip
/// disagrees with the actual one. Results depend only on `(trials,
/// seed)`: any thread count produces bit-identical output, equal to the
/// barrier path's ([`estimate_ler_barrier`]).
pub fn estimate_ler<'a>(
    ctx: &'a ExperimentContext,
    trials: u64,
    threads: usize,
    seed: u64,
    factory: &DecoderFactory<'a>,
) -> LerResult {
    estimate_ler_streamed(
        ctx,
        trials,
        seed,
        factory,
        PipelineConfig::for_threads(threads),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use blossom_mwpm::MwpmDecoder;

    #[test]
    fn results_are_reproducible_across_runs() {
        let ctx = ExperimentContext::new(3, 5e-3);
        let factory: Box<DecoderFactory> = Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())));
        let a = estimate_ler(&ctx, 10_000, 3, 42, &*factory);
        let b = estimate_ler(&ctx, 10_000, 3, 42, &*factory);
        assert_eq!(a, b);
        assert_eq!(a.trials, 10_000);
    }

    #[test]
    fn different_seeds_differ() {
        let ctx = ExperimentContext::new(3, 8e-3);
        let factory: Box<DecoderFactory> = Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())));
        let a = estimate_ler(&ctx, 5_000, 2, 1, &*factory);
        let b = estimate_ler(&ctx, 5_000, 2, 2, &*factory);
        assert_ne!(a.failures, b.failures);
    }

    #[test]
    fn thread_count_does_not_change_any_result() {
        // Stronger than trial-count preservation: per-shot seeding makes
        // the whole LerResult (failures, latency histograms, everything)
        // identical for every thread count.
        let ctx = ExperimentContext::new(3, 5e-3);
        let factory: Box<DecoderFactory> = Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())));
        let reference = estimate_ler(&ctx, 1_003, 1, 9, &*factory);
        assert_eq!(reference.trials, 1_003);
        for threads in [2, 5, 16] {
            let r = estimate_ler(&ctx, 1_003, threads, 9, &*factory);
            assert_eq!(r, reference, "diverged at {threads} threads");
        }
    }

    #[test]
    fn sampled_batches_are_thread_count_independent() {
        let ctx = ExperimentContext::new(3, 5e-3);
        let a = sample_batch(&ctx, 501, 1, 7);
        let b = sample_batch(&ctx, 501, 4, 7);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.detectors(i), b.detectors(i), "shot {i}");
            assert_eq!(a.observables(i), b.observables(i), "shot {i}");
        }
    }

    #[test]
    fn scalar_sampler_is_thread_count_invariant() {
        let ctx = ExperimentContext::new(3, 5e-3);
        let a = sample_batch_scalar(&ctx, 501, 1, 7);
        let b = sample_batch_scalar(&ctx, 501, 4, 7);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.detectors(i), b.detectors(i), "shot {i}");
            assert_eq!(a.observables(i), b.observables(i), "shot {i}");
        }
    }

    #[test]
    fn packed_sampler_trial_count_is_a_prefix_property() {
        let ctx = ExperimentContext::new(3, 5e-3);
        let short = sample_batch(&ctx, 70, 2, 13);
        let long = sample_batch(&ctx, 500, 3, 13);
        for i in 0..short.len() {
            assert_eq!(short.detectors(i), long.detectors(i), "shot {i}");
            assert_eq!(short.observables(i), long.observables(i), "shot {i}");
        }
    }

    #[test]
    fn ler_decreases_with_distance_at_fixed_p() {
        // The defining property of a working code + decoder stack: error
        // suppression with distance (below threshold).
        let p = 2e-3;
        let ctx3 = ExperimentContext::new(3, p);
        let ctx5 = ExperimentContext::new(5, p);
        let factory: Box<DecoderFactory> = Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())));
        let r3 = estimate_ler(&ctx3, 40_000, 4, 11, &*factory);
        let r5 = estimate_ler(&ctx5, 40_000, 4, 11, &*factory);
        assert!(
            r3.failures > 20,
            "need statistics at d=3, got {}",
            r3.failures
        );
        assert!(
            r5.ler() < r3.ler() / 2.0,
            "no error suppression: d=3 {} vs d=5 {}",
            r3.ler(),
            r5.ler()
        );
    }

    #[test]
    fn streamed_is_bit_identical_to_barrier() {
        let ctx = ExperimentContext::new(3, 5e-3);
        let factory: Box<DecoderFactory> = Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())));
        let barrier = estimate_ler_barrier(&ctx, 4_003, 2, 17, &*factory);
        for (tile_words, producers, consumers) in [(1, 1, 1), (3, 2, 3), (64, 1, 2)] {
            let config = PipelineConfig {
                tile_words,
                producers,
                consumers,
                channel_depth: 2,
                source: SyndromeSource::Dem,
                hard_cache_entries: DEFAULT_HARD_CACHE_ENTRIES,
            };
            let streamed = estimate_ler_streamed(&ctx, 4_003, 17, &*factory, config);
            assert_eq!(streamed, barrier, "config {config:?}");
        }
    }

    #[test]
    fn framesim_source_is_config_invariant() {
        let ctx = ExperimentContext::new(3, 5e-3);
        let factory: Box<DecoderFactory> = Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())));
        let reference = estimate_ler_streamed(
            &ctx,
            1_003,
            23,
            &*factory,
            PipelineConfig::default().with_source(SyndromeSource::FrameSim),
        );
        let config = PipelineConfig {
            tile_words: 2,
            producers: 2,
            consumers: 3,
            channel_depth: 2,
            source: SyndromeSource::FrameSim,
            hard_cache_entries: DEFAULT_HARD_CACHE_ENTRIES,
        };
        let other = estimate_ler_streamed(&ctx, 1_003, 23, &*factory, config);
        assert_eq!(other, reference);
        assert_eq!(reference.trials, 1_003);
        assert_eq!(reference.latency.shots, 1_003);
    }

    #[test]
    fn dem_and_framesim_sources_cross_validate() {
        // The DEM sampler and the full circuit-level frame simulator are
        // independent implementations of the same error process; their LER
        // estimates must agree statistically at every distance.
        for (d, p, trials) in [(3usize, 8e-3, 30_000u64), (5, 8e-3, 20_000)] {
            let ctx = ExperimentContext::new(d, p);
            let factory: Box<DecoderFactory> = Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())));
            let dem =
                estimate_ler_streamed(&ctx, trials, 101, &*factory, PipelineConfig::for_threads(4));
            let frame = estimate_ler_streamed(
                &ctx,
                trials,
                202,
                &*factory,
                PipelineConfig::for_threads(4).with_source(SyndromeSource::FrameSim),
            );
            assert!(dem.failures > 10, "d={d}: too few DEM failures");
            assert!(frame.failures > 10, "d={d}: too few frame-sim failures");
            let tolerance = 5.0 * (dem.std_err().powi(2) + frame.std_err().powi(2)).sqrt();
            assert!(
                (dem.ler() - frame.ler()).abs() <= tolerance,
                "d={d}: DEM {} vs frame-sim {} (tolerance {tolerance})",
                dem.ler(),
                frame.ler(),
            );
        }
    }

    #[test]
    fn std_err_shrinks_with_trials() {
        let a = LerResult {
            trials: 100,
            failures: 10,
            ..LerResult::default()
        };
        let b = LerResult {
            trials: 10_000,
            failures: 1000,
            ..LerResult::default()
        };
        assert!(b.std_err() < a.std_err());
    }

    #[test]
    fn latency_stats_track_max_and_means() {
        let mut s = LatencyStats::default();
        s.record(0, 0);
        s.record(4, 6);
        s.record(10, 114);
        assert_eq!(s.max_cycles, 114);
        assert_eq!(s.shots, 3);
        assert_eq!(s.nontrivial_shots, 2);
        assert_eq!(s.mean_ns(250.0), 160.0);
        assert_eq!(s.mean_nontrivial_ns(250.0), 240.0);
        assert_eq!(s.max_ns(250.0), 456.0);
    }
}
