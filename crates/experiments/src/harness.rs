//! Parallel Monte-Carlo memory experiments.

use decoding_graph::{Decoder, DecodingContext};
use qec_circuit::{DemSampler, NoiseModel, Shot};
use rand::rngs::StdRng;
use rand::SeedableRng;
use surface_code::SurfaceCode;

/// A decoding context plus the experiment parameters that produced it.
///
/// Building one is expensive (detector-error-model extraction and all-pairs
/// Dijkstra); reuse it across every decoder and trial count for the same
/// `(distance, p)` point.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// Code distance.
    pub distance: usize,
    /// Physical error rate.
    pub physical_error_rate: f64,
    ctx: DecodingContext,
}

impl ExperimentContext {
    /// Builds the context for a `(d, p)` memory experiment with `d` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `distance` is not an odd number ≥ 3 or `p` is not a
    /// probability.
    pub fn new(distance: usize, p: f64) -> ExperimentContext {
        let code = SurfaceCode::new(distance).expect("valid surface code distance");
        let ctx = DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(p));
        ExperimentContext {
            distance,
            physical_error_rate: p,
            ctx,
        }
    }

    /// Builds the context from an arbitrary annotated circuit — e.g. an
    /// X-basis memory experiment, a non-uniform [`qec_circuit::NoiseMap`]
    /// circuit, or a custom round count. `distance` and `p` are recorded
    /// for reporting only.
    pub fn from_circuit(
        distance: usize,
        p: f64,
        circuit: &qec_circuit::Circuit,
    ) -> ExperimentContext {
        ExperimentContext {
            distance,
            physical_error_rate: p,
            ctx: DecodingContext::from_circuit(circuit),
        }
    }

    /// The underlying decoding context.
    pub fn decoding(&self) -> &DecodingContext {
        &self.ctx
    }

    /// Shorthand for the Global Weight Table.
    pub fn gwt(&self) -> &decoding_graph::GlobalWeightTable {
        self.ctx.gwt()
    }

    /// Shorthand for the matching graph.
    pub fn graph(&self) -> &decoding_graph::MatchingGraph {
        self.ctx.graph()
    }

    /// Shorthand for the detector error model.
    pub fn dem(&self) -> &qec_circuit::DetectorErrorModel {
        self.ctx.dem()
    }
}

/// A thread-safe factory producing one decoder instance per worker thread.
pub type DecoderFactory<'a> = dyn Fn(&'a ExperimentContext) -> Box<dyn Decoder + 'a> + Sync + 'a;

/// The outcome of a logical-error-rate estimation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LerResult {
    /// Monte-Carlo trials run.
    pub trials: u64,
    /// Trials where the decoder's prediction missed the actual logical
    /// flip (logical errors).
    pub failures: u64,
    /// Trials the decoder declined to decode in real time (Astrea beyond
    /// its Hamming-weight ceiling, Clique deferrals). These still count as
    /// failures when the uncorrected observable flipped.
    pub deferred: u64,
    /// Latency statistics over the modeled hardware cycles.
    pub latency: LatencyStats,
}

impl LerResult {
    /// The logical error rate per `d`-round logical cycle.
    pub fn ler(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.failures as f64 / self.trials as f64
        }
    }

    /// Binomial standard error of [`LerResult::ler`].
    pub fn std_err(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        let p = self.ler();
        (p * (1.0 - p) / self.trials as f64).sqrt()
    }

    fn merge(&mut self, other: &LerResult) {
        self.trials += other.trials;
        self.failures += other.failures;
        self.deferred += other.deferred;
        self.latency.merge(&other.latency);
    }
}

/// Mergeable latency statistics in decoder cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Total cycles across all shots.
    pub total_cycles: u64,
    /// Total cycles across shots with Hamming weight > 2 (the paper's
    /// "Mean (HW > 2 Only)" series in Figure 9).
    pub total_cycles_nontrivial: u64,
    /// Number of shots with Hamming weight > 2.
    pub nontrivial_shots: u64,
    /// Worst-case cycles observed.
    pub max_cycles: u64,
    /// Number of shots observed (including trivial ones).
    pub shots: u64,
}

impl LatencyStats {
    fn record(&mut self, hamming_weight: usize, cycles: u64) {
        self.shots += 1;
        self.total_cycles += cycles;
        self.max_cycles = self.max_cycles.max(cycles);
        if hamming_weight > 2 {
            self.total_cycles_nontrivial += cycles;
            self.nontrivial_shots += 1;
        }
    }

    fn merge(&mut self, other: &LatencyStats) {
        self.total_cycles += other.total_cycles;
        self.total_cycles_nontrivial += other.total_cycles_nontrivial;
        self.nontrivial_shots += other.nontrivial_shots;
        self.max_cycles = self.max_cycles.max(other.max_cycles);
        self.shots += other.shots;
    }

    /// Mean latency over all shots, in nanoseconds at the given frequency.
    pub fn mean_ns(&self, freq_mhz: f64) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.shots as f64 * 1e3 / freq_mhz
        }
    }

    /// Mean latency over shots with Hamming weight > 2.
    pub fn mean_nontrivial_ns(&self, freq_mhz: f64) -> f64 {
        if self.nontrivial_shots == 0 {
            0.0
        } else {
            self.total_cycles_nontrivial as f64 / self.nontrivial_shots as f64 * 1e3 / freq_mhz
        }
    }

    /// Worst-case latency in nanoseconds.
    pub fn max_ns(&self, freq_mhz: f64) -> f64 {
        self.max_cycles as f64 * 1e3 / freq_mhz
    }
}

/// Estimates the logical error rate of a decoder by running `trials`
/// memory experiments across `threads` worker threads.
///
/// Each worker samples shots from the detector error model (statistically
/// identical to full circuit-level Pauli-frame simulation — see
/// `qec-circuit`'s validation tests), decodes them with its own decoder
/// instance from `factory`, and counts a failure whenever the predicted
/// observable flip disagrees with the actual one. Runs are reproducible
/// for a fixed `(trials, threads, seed)` triple.
pub fn estimate_ler<'a>(
    ctx: &'a ExperimentContext,
    trials: u64,
    threads: usize,
    seed: u64,
    factory: &DecoderFactory<'a>,
) -> LerResult {
    let threads = threads.max(1);
    let per_thread = trials / threads as u64;
    let remainder = trials % threads as u64;

    let results = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for tid in 0..threads {
            let thread_trials = per_thread + u64::from((tid as u64) < remainder);
            let handle = scope.spawn(move |_| {
                let mut decoder = factory(ctx);
                let mut sampler = DemSampler::new(ctx.dem());
                let mut rng = StdRng::seed_from_u64(
                    seed ^ (0x9E37_79B9_7F4A_7C15u64).wrapping_mul(tid as u64 + 1),
                );
                let mut local = LerResult::default();
                let mut shot = Shot::default();
                for _ in 0..thread_trials {
                    sampler.sample_into(&mut rng, &mut shot);
                    local.trials += 1;
                    if shot.detectors.is_empty() {
                        // Trivial shot: identity prediction, zero latency.
                        local.latency.record(0, 0);
                        local.failures += u64::from(shot.observables != 0);
                        continue;
                    }
                    let p = decoder.decode(&shot.detectors);
                    local.latency.record(shot.detectors.len(), p.cycles);
                    local.deferred += u64::from(p.deferred);
                    local.failures += u64::from(p.observables != shot.observables);
                }
                local
            });
            handles.push(handle);
        }
        let mut total = LerResult::default();
        for h in handles {
            total.merge(&h.join().expect("worker thread panicked"));
        }
        total
    })
    .expect("thread scope failed");

    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use blossom_mwpm::MwpmDecoder;

    #[test]
    fn results_are_reproducible_across_runs() {
        let ctx = ExperimentContext::new(3, 5e-3);
        let factory: Box<DecoderFactory> = Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())));
        let a = estimate_ler(&ctx, 10_000, 3, 42, &*factory);
        let b = estimate_ler(&ctx, 10_000, 3, 42, &*factory);
        assert_eq!(a, b);
        assert_eq!(a.trials, 10_000);
    }

    #[test]
    fn different_seeds_differ() {
        let ctx = ExperimentContext::new(3, 8e-3);
        let factory: Box<DecoderFactory> = Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())));
        let a = estimate_ler(&ctx, 5_000, 2, 1, &*factory);
        let b = estimate_ler(&ctx, 5_000, 2, 2, &*factory);
        assert_ne!(a.failures, b.failures);
    }

    #[test]
    fn thread_count_does_not_change_trial_count() {
        let ctx = ExperimentContext::new(3, 5e-3);
        let factory: Box<DecoderFactory> = Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())));
        for threads in [1, 2, 5] {
            let r = estimate_ler(&ctx, 1_003, threads, 9, &*factory);
            assert_eq!(r.trials, 1_003);
        }
    }

    #[test]
    fn ler_decreases_with_distance_at_fixed_p() {
        // The defining property of a working code + decoder stack: error
        // suppression with distance (below threshold).
        let p = 2e-3;
        let ctx3 = ExperimentContext::new(3, p);
        let ctx5 = ExperimentContext::new(5, p);
        let factory: Box<DecoderFactory> = Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())));
        let r3 = estimate_ler(&ctx3, 40_000, 4, 11, &*factory);
        let r5 = estimate_ler(&ctx5, 40_000, 4, 11, &*factory);
        assert!(
            r3.failures > 20,
            "need statistics at d=3, got {}",
            r3.failures
        );
        assert!(
            r5.ler() < r3.ler() / 2.0,
            "no error suppression: d=3 {} vs d=5 {}",
            r3.ler(),
            r5.ler()
        );
    }

    #[test]
    fn std_err_shrinks_with_trials() {
        let a = LerResult {
            trials: 100,
            failures: 10,
            ..LerResult::default()
        };
        let b = LerResult {
            trials: 10_000,
            failures: 1000,
            ..LerResult::default()
        };
        assert!(b.std_err() < a.std_err());
    }

    #[test]
    fn latency_stats_track_max_and_means() {
        let mut s = LatencyStats::default();
        s.record(0, 0);
        s.record(4, 6);
        s.record(10, 114);
        assert_eq!(s.max_cycles, 114);
        assert_eq!(s.shots, 3);
        assert_eq!(s.nontrivial_shots, 2);
        assert_eq!(s.mean_ns(250.0), 160.0);
        assert_eq!(s.mean_nontrivial_ns(250.0), 240.0);
        assert_eq!(s.max_ns(250.0), 456.0);
    }
}
