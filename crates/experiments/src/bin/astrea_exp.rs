//! `astrea-exp`: regenerates every table and figure of the Astrea paper's
//! evaluation section. See `DESIGN.md` for the experiment index.
//!
//! Usage:
//!
//! ```text
//! astrea-exp <experiment> [--trials N] [--threads N] [--seed N] [--fast]
//! ```
//!
//! where `<experiment>` is a paper artifact (`table1 table2 table4 table5
//! table6 table7 table9 fig3 fig4 fig6 fig9 fig10 fig12 fig13 fig14`, or
//! `all`) or an extension study (`basis drift quantization ablation
//! compression edgekinds latency`, or `extensions`). `--trials` (direct
//! Monte-Carlo shots) and `--per-k` (stratified trials per error-count
//! stratum) accept scientific notation (`1e7`); `--fast` divides all
//! presets by 10 for smoke runs.

use astrea_core::{
    overheads::StorageModel, AstreaDecoder, AstreaGConfig, AstreaGDecoder, CliqueDecoder,
    CycleModel, LutDecoder,
};
use astrea_experiments::{
    analytic, estimate_ler, hamming::HammingHistogram, report, stratified, DecoderFactory,
    ExperimentContext,
};
use blossom_mwpm::MwpmDecoder;
use decoding_graph::Decoder;
use qec_circuit::DemSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use surface_code::CodeResources;
use union_find_decoder::UnionFindDecoder;

#[derive(Debug, Clone)]
struct Options {
    experiment: String,
    trials: Option<u64>,
    per_k: Option<u64>,
    threads: usize,
    seed: u64,
    fast: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let experiment = args.next().ok_or_else(usage)?;
    let mut opts = Options {
        experiment,
        trials: None,
        per_k: None,
        threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        seed: 0x00A5_7EA0,
        fast: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trials" => {
                let v = args.next().ok_or("--trials needs a value")?;
                opts.trials = Some(report::parse_trials(&v)?);
            }
            "--per-k" => {
                let v = args.next().ok_or("--per-k needs a value")?;
                opts.per_k = Some(report::parse_trials(&v)?);
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                opts.threads = v.parse().map_err(|_| format!("bad thread count {v}"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
            }
            "--fast" => opts.fast = true,
            other => return Err(format!("unknown option {other}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn usage() -> String {
    "usage: astrea-exp <experiment> [--trials N] [--per-k N] [--threads N] [--seed N] [--fast]\n\
     paper artifacts: table1 table2 table4 table5 table6 table7 table9\n\
                      fig3 fig4 fig6 fig9 fig10 fig12 fig13 fig14 | all\n\
     extensions:      basis drift quantization ablation compression\n\
                      edgekinds latency backlog | extensions"
        .to_string()
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let start = Instant::now();
    run(&opts.experiment.clone(), &opts);
    eprintln!("[{}] done in {:.1?}", opts.experiment, start.elapsed());
}

fn run(experiment: &str, opts: &Options) {
    match experiment {
        "table1" => table1(),
        "table2" => table2(opts),
        "table4" => table4(opts),
        "table5" => table5(opts),
        "table6" => table6(),
        "table7" => table7(opts),
        "table9" => table9(opts),
        "fig3" => fig3(opts),
        "fig4" => fig4(opts),
        "fig6" => fig6(opts),
        "fig9" => fig9(opts),
        "fig10" => fig10(opts),
        "fig12" => fig12(opts),
        "fig13" => fig13(opts),
        "fig14" => fig14(opts),
        "basis" => basis_symmetry(opts),
        "edgekinds" => edge_kinds(opts),
        "latency" => latency_profile(opts),
        "backlog" => backlog(opts),
        "drift" => drift(opts),
        "quantization" => quantization(opts),
        "ablation" => ablation(opts),
        "compression" => compression(opts),
        "all" => {
            for e in [
                "table1", "table2", "table4", "table5", "table6", "table7", "table9", "fig3",
                "fig4", "fig6", "fig9", "fig10", "fig12", "fig13", "fig14",
            ] {
                println!("\n================ {e} ================");
                run(e, opts);
            }
        }
        "extensions" => {
            for e in [
                "basis",
                "drift",
                "quantization",
                "ablation",
                "compression",
                "edgekinds",
                "latency",
            ] {
                println!("\n================ {e} ================");
                run(e, opts);
            }
        }
        other => {
            eprintln!("unknown experiment {other}\n{}", usage());
            std::process::exit(2);
        }
    }
}

fn preset(opts: &Options, default: u64) -> u64 {
    let t = opts.trials.unwrap_or(default);
    if opts.fast {
        (t / 10).max(1000)
    } else {
        t
    }
}

/// Per-stratum trial count for the stratified estimator (`--per-k`).
fn preset_per_k(opts: &Options, default: u64) -> u64 {
    let t = opts.per_k.unwrap_or(default);
    if opts.fast {
        (t / 10).max(500)
    } else {
        t
    }
}

// ---------------------------------------------------------------- factories

fn mwpm_factory<'a>() -> Box<DecoderFactory<'a>> {
    Box::new(|c: &ExperimentContext| Box::new(MwpmDecoder::new(c.gwt())) as Box<dyn Decoder>)
}

fn astrea_factory<'a>() -> Box<DecoderFactory<'a>> {
    Box::new(|c: &ExperimentContext| Box::new(AstreaDecoder::new(c.gwt())) as Box<dyn Decoder>)
}

fn astrea_g_factory<'a>(config: AstreaGConfig) -> Box<DecoderFactory<'a>> {
    Box::new(move |c: &ExperimentContext| {
        Box::new(AstreaGDecoder::with_config(c.gwt(), config)) as Box<dyn Decoder>
    })
}

fn uf_factory<'a>() -> Box<DecoderFactory<'a>> {
    Box::new(|c: &ExperimentContext| Box::new(UnionFindDecoder::new(c.graph())) as Box<dyn Decoder>)
}

fn clique_factory<'a>() -> Box<DecoderFactory<'a>> {
    Box::new(|c: &ExperimentContext| {
        Box::new(CliqueDecoder::new(c.graph(), c.gwt())) as Box<dyn Decoder>
    })
}

/// Stratified LER (Appendix A method) — usable even when the LER is far
/// below direct Monte-Carlo reach.
fn strat_ler<'a>(
    ctx: &'a ExperimentContext,
    opts: &Options,
    trials_per_k: u64,
    factory: &DecoderFactory<'a>,
) -> f64 {
    stratified::estimate_stratified(ctx, 14, trials_per_k, opts.threads, opts.seed, factory).ler()
}

// ---------------------------------------------------------------- table 1

fn table1() {
    println!("Table 1: Resources required for surface code logical qubits\n");
    let rows: Vec<Vec<String>> = [3usize, 5, 7, 9]
        .iter()
        .map(|&d| {
            let r = CodeResources::for_distance(d);
            vec![
                d.to_string(),
                r.data_qubits.to_string(),
                format!(
                    "{} + {} = {}",
                    r.parity_qubits_x,
                    r.parity_qubits_z,
                    r.parity_qubits_x + r.parity_qubits_z
                ),
                r.total_qubits.to_string(),
                format!(
                    "{} / {}",
                    r.syndrome_len_per_basis, r.syndrome_len_per_basis
                ),
            ]
        })
        .collect();
    print!(
        "{}",
        report::render_table(
            &["d", "Data", "Parity (X+Z)", "Total", "Syndrome (X/Z)"],
            &rows
        )
    );
}

// ---------------------------------------------------------------- table 2

fn table2(opts: &Options) {
    println!("Table 2: Syndrome-vector probability by Hamming weight (p = 1e-4)\n");
    let trials = preset(opts, 3_000_000);
    let groups: [(usize, usize); 5] = [(1, 2), (3, 4), (5, 6), (7, 10), (11, usize::MAX)];
    let mut rows: Vec<Vec<String>> = vec![
        vec!["0".into()],
        vec!["1,2".into()],
        vec!["3,4".into()],
        vec!["5,6".into()],
        vec!["7-10".into()],
        vec![">10".into()],
        vec!["LER (MWPM)".into()],
    ];
    for d in [3usize, 5, 7] {
        let ctx = ExperimentContext::new(d, 1e-4);
        let h = HammingHistogram::sample(&ctx, trials, opts.threads, opts.seed);
        rows[0].push(report::prob(h.probability(0)));
        for (i, (a, b)) in groups.iter().enumerate() {
            let p = if *b == usize::MAX {
                h.tail_probability(*a - 1)
            } else {
                h.probability_range(*a, *b)
            };
            rows[i + 1].push(report::prob(p));
        }
        let ler = strat_ler(&ctx, opts, preset_per_k(opts, 40_000), &*mwpm_factory());
        rows[6].push(report::sci(ler));
    }
    print!(
        "{}",
        report::render_table(&["Hamming Weight", "d=3", "d=5", "d=7"], &rows)
    );
    println!(
        "\n({} sampled syndromes per distance; LER via stratified estimator)",
        trials
    );
}

// ---------------------------------------------------------------- table 4

fn table4(opts: &Options) {
    println!("Table 4: Logical error rate by decoder at p = 1e-4, d rounds\n");
    let per_k = preset_per_k(opts, 40_000);
    let mut rows = Vec::new();
    for d in [3usize, 5, 7] {
        let ctx = ExperimentContext::new(d, 1e-4);
        let mwpm = strat_ler(&ctx, opts, per_k, &*mwpm_factory());
        let astrea = strat_ler(&ctx, opts, per_k, &*astrea_factory());
        let lilliput = if d == 3 {
            let lut = LutDecoder::build(ctx.gwt());
            let factory: Box<DecoderFactory> =
                Box::new(move |_c: &ExperimentContext| Box::new(lut.clone()) as Box<dyn Decoder>);
            report::sci(strat_ler(&ctx, opts, per_k, &*factory))
        } else {
            "N/A".to_string()
        };
        let clique = strat_ler(&ctx, opts, per_k, &*clique_factory());
        let afs = strat_ler(&ctx, opts, per_k, &*uf_factory());
        rows.push(vec![
            d.to_string(),
            report::sci(mwpm),
            report::sci(astrea),
            lilliput,
            report::sci(clique),
            report::sci(afs),
        ]);
    }
    print!(
        "{}",
        report::render_table(
            &["d", "MWPM", "Astrea", "LILLIPUT", "Clique", "AFS (UF)"],
            &rows
        )
    );
    println!("\n(stratified estimator, {per_k} trials per error-count stratum)");
}

// ---------------------------------------------------------------- table 5

fn table5(opts: &Options) {
    println!("Table 5: Syndrome-vector probability by Hamming weight, d = 7\n");
    let trials = preset(opts, 3_000_000);
    let mut rows: Vec<Vec<String>> = vec![
        vec!["0".into()],
        vec!["1 to 10".into()],
        vec![">10".into()],
        vec!["LER (MWPM)".into()],
    ];
    for p in [1e-3, 1e-4] {
        let ctx = ExperimentContext::new(7, p);
        let h = HammingHistogram::sample(&ctx, trials, opts.threads, opts.seed);
        rows[0].push(report::prob(h.probability(0)));
        rows[1].push(report::prob(h.probability_range(1, 10)));
        rows[2].push(report::sci(h.tail_probability(10)));
        let ler = strat_ler(&ctx, opts, preset_per_k(opts, 40_000), &*mwpm_factory());
        rows[3].push(report::sci(ler));
    }
    print!(
        "{}",
        report::render_table(&["Hamming Weight", "p=1e-3", "p=1e-4"], &rows)
    );
}

// ---------------------------------------------------------------- table 6

fn table6() {
    println!("Table 6: SRAM overheads for Astrea-G (per stabilizer basis)\n");
    let model = StorageModel::default();
    let (o7, o9) = (model.overheads(7), model.overheads(9));
    let fmt = |b: usize| {
        if b >= 1024 {
            format!("{:.1}KB", b as f64 / 1024.0)
        } else {
            format!("{b}B")
        }
    };
    let rows = vec![
        vec![
            "Global Weight Table (GWT)".to_string(),
            fmt(o7.gwt_bytes),
            fmt(o9.gwt_bytes),
        ],
        vec![
            "Local Weight Table (LWT)".to_string(),
            fmt(o7.lwt_bytes),
            fmt(o9.lwt_bytes),
        ],
        vec![
            "Priority Queues".to_string(),
            fmt(o7.priority_queue_bytes),
            fmt(o9.priority_queue_bytes),
        ],
        vec![
            "Pipeline Latches".to_string(),
            fmt(o7.pipeline_latch_bytes),
            fmt(o9.pipeline_latch_bytes),
        ],
        vec![
            "MWPM Register".to_string(),
            fmt(o7.mwpm_register_bytes),
            fmt(o9.mwpm_register_bytes),
        ],
        vec![
            "Total".to_string(),
            fmt(o7.total_bytes()),
            fmt(o9.total_bytes()),
        ],
    ];
    print!(
        "{}",
        report::render_table(&["Component", "d=7", "d=9"], &rows)
    );
}

// ---------------------------------------------------------------- table 7

fn table7(opts: &Options) {
    println!("Table 7: Bandwidth requirements for Astrea-G (d = 9, p = 1e-3)\n");
    let ctx = ExperimentContext::new(9, 1e-3);
    let per_k = preset_per_k(opts, 20_000);
    let model = CycleModel::default();
    let baseline_budget = model.cycles_within_ns(1000.0);
    let baseline = strat_ler(
        &ctx,
        opts,
        per_k,
        &*astrea_g_factory(AstreaGConfig {
            cycle_budget: baseline_budget,
            ..AstreaGConfig::default()
        }),
    );
    let mut rows = vec![vec![
        "0".to_string(),
        "Unlimited".to_string(),
        "1.00x".to_string(),
    ]];
    for trans_ns in [50.0, 100.0, 200.0, 300.0, 400.0, 500.0] {
        let budget = model.cycles_within_ns(1000.0 - trans_ns);
        let ler = strat_ler(
            &ctx,
            opts,
            per_k,
            &*astrea_g_factory(AstreaGConfig {
                cycle_budget: budget,
                ..AstreaGConfig::default()
            }),
        );
        let bw = astrea_core::overheads::required_bandwidth_mbps(9, trans_ns);
        rows.push(vec![
            format!("{trans_ns:.0}"),
            format!("{bw:.0}"),
            format!("{:.2}x", ler / baseline.max(1e-300)),
        ]);
    }
    print!(
        "{}",
        report::render_table(
            &["Transmission (ns)", "Bandwidth (MBps)", "Relative LER"],
            &rows
        )
    );
}

// ---------------------------------------------------------------- table 9

fn table9(opts: &Options) {
    println!("Table 9 (Appendix A): stratified LER at p = 1e-4\n");
    let per_k = preset_per_k(opts, 20_000);
    let mut rows = Vec::new();
    for d in [7usize, 9, 11] {
        eprintln!("[table9] building d={d} context...");
        let ctx = ExperimentContext::new(d, 1e-4);
        let mwpm = strat_ler(&ctx, opts, per_k, &*mwpm_factory());
        let g = strat_ler(
            &ctx,
            opts,
            per_k,
            &*astrea_g_factory(AstreaGConfig::default()),
        );
        rows.push(vec![d.to_string(), report::sci(mwpm), report::sci(g)]);
    }
    print!(
        "{}",
        report::render_table(&["d", "MWPM LER", "Astrea-G LER"], &rows)
    );
}

// ---------------------------------------------------------------- fig 3

fn fig3(opts: &Options) {
    println!("Figure 3: software MWPM decoding latency (d = 7, p = 1e-3)\n");
    let ctx = ExperimentContext::new(7, 1e-3);
    let trials = preset(opts, 20_000);
    let decoder = MwpmDecoder::new(ctx.gwt());
    let mut local = blossom_mwpm::LocalMwpmDecoder::new(ctx.graph());
    let mut sampler = DemSampler::new(ctx.dem());
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut dense_us: Vec<f64> = Vec::new();
    let mut local_us: Vec<f64> = Vec::new();
    for _ in 0..trials {
        let shot = sampler.sample(&mut rng);
        if shot.detectors.is_empty() {
            continue;
        }
        let t = Instant::now();
        let _ = decoder.decode_full(&shot.detectors);
        dense_us.push(t.elapsed().as_secs_f64() * 1e6);
        let t = Instant::now();
        let _ = local.decode_full(&shot.detectors);
        local_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    for (name, latencies_us) in [
        ("dense exact MWPM", &mut dense_us),
        ("local sparse MWPM", &mut local_us),
    ] {
        latencies_us.sort_by(f64::total_cmp);
        let n = latencies_us.len().max(1);
        let pct = |q: f64| latencies_us[((n as f64 * q) as usize).min(n - 1)];
        let over_1us = latencies_us.iter().filter(|&&t| t > 1.0).count();
        println!("{name}: {n} nonzero syndromes decoded");
        println!(
            "  p50 = {:.2} us, p90 = {:.2} us, p99 = {:.2} us, max = {:.2} us",
            pct(0.5),
            pct(0.9),
            pct(0.99),
            latencies_us.last().copied().unwrap_or(0.0)
        );
        println!(
            "  fraction exceeding the 1 us real-time budget: {:.1}%",
            100.0 * over_1us as f64 / n as f64
        );
    }
    println!("\n(notes: the dense decoder reads the precomputed GWT, so its average");
    println!(" case is far faster than the paper's 2023-era BlossomV baseline, which");
    println!(" missed 1 us on 96% of nonzero syndromes; the qualitative point — a");
    println!(" worst-case tail hundreds of times the median, which no software");
    println!(" decoder can bound — reproduces in both rows. The local sparse matcher");
    println!(" trades per-shot graph search for O(edges) memory: it needs no GWT at");
    println!(" all, which is how PyMatching-style software scales to large d.)");
}

// ---------------------------------------------------------------- fig 4

fn fig4(opts: &Options) {
    println!("Figure 4: LER vs distance at p = 1e-4 (MWPM / AFS-UF / Clique)\n");
    let per_k = preset_per_k(opts, 40_000);
    let mut rows = Vec::new();
    for d in [3usize, 5, 7] {
        let ctx = ExperimentContext::new(d, 1e-4);
        rows.push(vec![
            d.to_string(),
            report::sci(strat_ler(&ctx, opts, per_k, &*mwpm_factory())),
            report::sci(strat_ler(&ctx, opts, per_k, &*uf_factory())),
            report::sci(strat_ler(&ctx, opts, per_k, &*clique_factory())),
        ]);
    }
    print!(
        "{}",
        report::render_table(&["d", "MWPM", "AFS (UF)", "Clique+MWPM"], &rows)
    );
}

// ---------------------------------------------------------------- fig 6

fn fig6(opts: &Options) {
    println!("Figure 6: Hamming-weight probabilities, analytic bound vs observed");
    println!("(d = 5, p = 1e-4)\n");
    let ctx = ExperimentContext::new(5, 1e-4);
    let trials = preset(opts, 3_000_000);
    let h = HammingHistogram::sample(&ctx, trials, opts.threads, opts.seed);
    let mut rows = Vec::new();
    for hw in (0..=12usize).step_by(2) {
        rows.push(vec![
            hw.to_string(),
            report::sci(analytic::hamming_weight_probability(5, 1e-4, hw)),
            report::sci(h.probability(hw) + if hw > 0 { h.probability(hw - 1) } else { 0.0 }),
        ]);
    }
    print!(
        "{}",
        report::render_table(&["HW", "Upper bound (model)", "Observed (hw, hw-1)"], &rows)
    );
    println!("\n(observed column groups odd weights with the even weight above them;");
    println!(" the analytic model only produces even weights)");
}

// ---------------------------------------------------------------- fig 9

fn fig9(opts: &Options) {
    println!("Figure 9: Astrea decode latency at p = 1e-4 (250 MHz cycle model)\n");
    let trials = preset(opts, 2_000_000);
    let mut rows = Vec::new();
    for d in [3usize, 5, 7] {
        let ctx = ExperimentContext::new(d, 1e-4);
        let r = estimate_ler(&ctx, trials, opts.threads, opts.seed, &*astrea_factory());
        rows.push(vec![
            d.to_string(),
            format!("{:.2}", r.latency.mean_ns(250.0)),
            format!("{:.1}", r.latency.mean_nontrivial_ns(250.0)),
            format!("{:.0}", r.latency.max_ns(250.0)),
        ]);
    }
    print!(
        "{}",
        report::render_table(&["d", "Mean (ns)", "Mean HW>2 (ns)", "Max (ns)"], &rows)
    );
    println!("\n(paper: mean ≤ 1 ns, max 32/80/456 ns for d = 3/5/7)");
}

// ---------------------------------------------------------------- fig 10

fn fig10(opts: &Options) {
    println!("Figure 10a: distribution of GWT pair weights (d = 7, p = 1e-3)\n");
    let ctx = ExperimentContext::new(7, 1e-3);
    let gwt = ctx.gwt();
    let n = gwt.len() as u32;
    let mut hist = vec![0u64; 33];
    let mut total = 0u64;
    for i in 0..n {
        for j in 0..n {
            let w = if i == j {
                gwt.boundary_weight(i)
            } else {
                gwt.pair_weight(i, j)
            };
            let bucket = w.clamp(0.0, 32.0) as usize;
            hist[bucket.min(32)] += 1;
            total += 1;
        }
    }
    let mut rows = Vec::new();
    for (w, &c) in hist.iter().enumerate() {
        if c > 0 {
            rows.push(vec![
                w.to_string(),
                format!("{:.3}", c as f64 / total as f64),
                "#".repeat((60 * c / total.max(1)) as usize + usize::from(c > 0)),
            ]);
        }
    }
    print!(
        "{}",
        report::render_table(&["Weight", "Frequency", ""], &rows)
    );

    println!("\nFigure 10b: pairs per syndrome bit after filtering (Wth = 8)\n");
    // Sample a Hamming-weight-16 syndrome like the paper's example.
    let mut sampler = DemSampler::new(ctx.dem());
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let shot = loop {
        let s = sampler.sample(&mut rng);
        if s.detectors.len() == 16 {
            break s.clone();
        }
    };
    let wth = 8.0;
    let mut kept_total = 0usize;
    let mut rows = Vec::new();
    for (bi, &i) in shot.detectors.iter().enumerate() {
        let kept = shot
            .detectors
            .iter()
            .filter(|&&j| {
                j != i
                    && gwt
                        .pair_weight(i, j)
                        .min(gwt.boundary_weight(i) + gwt.boundary_weight(j))
                        <= wth
            })
            .count();
        kept_total += kept;
        rows.push(vec![bi.to_string(), 15.to_string(), kept.to_string()]);
    }
    print!(
        "{}",
        report::render_table(
            &["Syndrome bit", "Pairs (unfiltered)", "Pairs (W ≤ 8)"],
            &rows
        )
    );
    let reduction = 1.0 - kept_total as f64 / (16.0 * 15.0);
    println!(
        "\npair reduction: {:.0}% (paper: 58% fewer pairs → ~953x fewer matchings)",
        reduction * 100.0
    );
}

// ---------------------------------------------------------------- fig 12 / fig 14

fn ler_sweep(opts: &Options, d: usize, label: &str) {
    println!("{label}: LER of MWPM vs Astrea-G, d = {d}\n");
    let per_k = preset_per_k(opts, 20_000);
    let mut rows = Vec::new();
    for i in 1..=10 {
        let p = i as f64 * 1e-4;
        let ctx = ExperimentContext::new(d, p);
        let mwpm = strat_ler(&ctx, opts, per_k, &*mwpm_factory());
        let g = strat_ler(
            &ctx,
            opts,
            per_k,
            &*astrea_g_factory(AstreaGConfig::default()),
        );
        rows.push(vec![
            format!("{:.0e}", p),
            report::sci(mwpm),
            report::sci(g),
            format!("{:.2}x", g / mwpm.max(1e-300)),
        ]);
        eprintln!("[{label}] p = {p:.0e} done");
    }
    print!(
        "{}",
        report::render_table(&["p", "MWPM", "Astrea-G", "ratio"], &rows)
    );
}

fn fig12(opts: &Options) {
    ler_sweep(opts, 7, "Figure 12");
}

fn fig14(opts: &Options) {
    ler_sweep(opts, 9, "Figure 14");
}

// ---------------------------------------------------------------- fig 13

fn fig13(opts: &Options) {
    println!("Figure 13: Astrea-G LER vs weight threshold (d = 7, p = 1e-3)\n");
    let ctx = ExperimentContext::new(7, 1e-3);
    let per_k = preset_per_k(opts, 20_000);
    let mwpm = strat_ler(&ctx, opts, per_k, &*mwpm_factory());
    let mut rows = Vec::new();
    for wth10 in (40..=80).step_by(5) {
        let wth = wth10 as f64 / 10.0;
        let ler = strat_ler(
            &ctx,
            opts,
            per_k,
            &*astrea_g_factory(AstreaGConfig {
                weight_threshold: wth,
                ..AstreaGConfig::default()
            }),
        );
        rows.push(vec![
            format!("{wth:.1}"),
            report::sci(ler),
            format!("{:.2}x", ler / mwpm.max(1e-300)),
        ]);
    }
    print!(
        "{}",
        report::render_table(&["Wth", "Astrea-G LER", "vs MWPM"], &rows)
    );
    println!("\n(MWPM reference LER: {})", report::sci(mwpm));
}

// ------------------------------------------------------ extension: basis

/// X-basis vs Z-basis memory experiments (§3.4 claims they are
/// functionally equivalent under the symmetric noise model; verify it).
fn basis_symmetry(opts: &Options) {
    use qec_circuit::{build_memory_x_circuit, build_memory_z_circuit, NoiseModel};
    use surface_code::SurfaceCode;
    println!("Extension: X-basis vs Z-basis memory LER (d = 3, 5)\n");
    let trials = preset(opts, 400_000);
    let p = 3e-3;
    let mut rows = Vec::new();
    for d in [3usize, 5] {
        let code = SurfaceCode::new(d).expect("valid distance");
        let zc = build_memory_z_circuit(&code, d, NoiseModel::depolarizing(p));
        let xc = build_memory_x_circuit(&code, d, NoiseModel::depolarizing(p));
        let zctx = ExperimentContext::from_circuit(d, p, &zc);
        let xctx = ExperimentContext::from_circuit(d, p, &xc);
        let z = estimate_ler(&zctx, trials, opts.threads, opts.seed, &*mwpm_factory()).ler();
        let x = estimate_ler(&xctx, trials, opts.threads, opts.seed, &*mwpm_factory()).ler();
        rows.push(vec![
            d.to_string(),
            report::sci(z),
            report::sci(x),
            format!("{:.2}", x / z.max(1e-300)),
        ]);
    }
    print!(
        "{}",
        report::render_table(&["d", "Z-memory LER", "X-memory LER", "X/Z"], &rows)
    );
    println!("\n(p = {p}; the ratio should be ≈ 1 — the bases are symmetric)");
}

// ------------------------------------------------------ extension: drift

/// Non-uniform error rates and drift (§8.2): a decoder whose GWT was
/// programmed for uniform noise loses accuracy when a region of the chip
/// runs hot; reprogramming the GWT from the true rates recovers it.
fn drift(opts: &Options) {
    use qec_circuit::{build_memory_circuit, NoiseMap, NoiseModel};
    use surface_code::{Basis, SurfaceCode};
    println!("Extension: GWT reprogramming under non-uniform noise (§8.2)\n");
    let trials = preset(opts, 400_000);
    let d = 5;
    let base = 1e-3;
    let code = SurfaceCode::new(d).expect("valid distance");

    // True device: one quadrant of the data qubits runs 8x hotter.
    let mut hot = NoiseMap::uniform(&code, NoiseModel::depolarizing(base));
    for r in 0..d / 2 {
        for c in 0..d / 2 {
            hot.scale_qubit(r * d + c, 8.0);
        }
    }
    let true_circuit = build_memory_circuit(&code, d, &hot, Basis::Z);
    let true_ctx = ExperimentContext::from_circuit(d, base, &true_circuit);

    // Stale decoder: GWT built assuming uniform noise.
    let stale_ctx = ExperimentContext::new(d, base);

    let stale_gwt = stale_ctx.gwt();
    let stale_factory: Box<DecoderFactory> =
        Box::new(move |_c| Box::new(MwpmDecoder::new(stale_gwt)) as Box<dyn Decoder>);
    let fresh_factory = mwpm_factory();

    let stale = estimate_ler(&true_ctx, trials, opts.threads, opts.seed, &*stale_factory);
    let fresh = estimate_ler(&true_ctx, trials, opts.threads, opts.seed, &*fresh_factory);

    let rows = vec![
        vec![
            "uniform-noise GWT (stale)".to_string(),
            report::sci(stale.ler()),
        ],
        vec![
            "reprogrammed GWT (true rates)".to_string(),
            report::sci(fresh.ler()),
        ],
    ];
    print!(
        "{}",
        report::render_table(&["decoder weights", "LER"], &rows)
    );
    println!(
        "\n(d = {d}, base p = {base}, one quadrant 8x hotter, {trials} trials; \
         reprogramming gain: {:.2}x)",
        stale.ler() / fresh.ler().max(1e-300)
    );
}

// ------------------------------------------------ extension: quantization

/// Weight-quantization ablation: the paper stores 8-bit weights in the
/// GWT (§5.1); sweep the fixed-point scale to confirm 8 bits at Q5.3 is
/// accuracy-neutral.
fn quantization(opts: &Options) {
    use decoding_graph::GlobalWeightTable;
    println!("Extension: GWT quantization scale vs accuracy (d = 5, p = 3e-3)\n");
    let trials = preset(opts, 400_000);
    let ctx = ExperimentContext::new(5, 3e-3);
    let exact = estimate_ler(&ctx, trials, opts.threads, opts.seed, &*mwpm_factory());
    let mut rows = vec![vec![
        "exact (f64)".to_string(),
        report::sci(exact.ler()),
        "1.00x".to_string(),
    ]];
    for scale in [1.0f64, 2.0, 4.0, 8.0, 16.0] {
        let gwt = GlobalWeightTable::with_scale(ctx.graph(), scale);
        let gwt_ref = &gwt;
        let factory: Box<DecoderFactory> = Box::new(move |_c| {
            Box::new(MwpmDecoder::with_quantized_weights(gwt_ref)) as Box<dyn Decoder>
        });
        let r = estimate_ler(&ctx, trials, opts.threads, opts.seed, &*factory);
        rows.push(vec![
            format!("u8 @ {scale} subunits/weight"),
            report::sci(r.ler()),
            format!("{:.2}x", r.ler() / exact.ler().max(1e-300)),
        ]);
    }
    print!(
        "{}",
        report::render_table(&["weight representation", "LER", "vs exact"], &rows)
    );
    println!("\n(coarser scales lose resolution; the paper's 8-bit table is lossless in LER)");
}

// ----------------------------------------------------- extension: ablation

/// Fetch-width / queue-capacity ablation (§7.1: "larger fetch widths and
/// priority queues improve accuracy but require more logic").
fn ablation(opts: &Options) {
    println!("Extension: Astrea-G fetch width F and queue capacity E (d = 7, p = 1e-3)\n");
    let per_k = preset_per_k(opts, 10_000);
    let ctx = ExperimentContext::new(7, 1e-3);
    let mwpm = strat_ler(&ctx, opts, per_k, &*mwpm_factory());
    let mut rows = Vec::new();
    for (f, e) in [(1usize, 4usize), (1, 8), (2, 4), (2, 8), (4, 8), (4, 16)] {
        let ler = strat_ler(
            &ctx,
            opts,
            per_k,
            &*astrea_g_factory(AstreaGConfig {
                fetch_width: f,
                queue_capacity: e,
                ..AstreaGConfig::default()
            }),
        );
        rows.push(vec![
            f.to_string(),
            e.to_string(),
            report::sci(ler),
            format!("{:.2}x", ler / mwpm.max(1e-300)),
        ]);
    }
    print!(
        "{}",
        report::render_table(&["F", "E", "Astrea-G LER", "vs MWPM"], &rows)
    );
    println!(
        "\n(MWPM reference: {}; paper default F = 2, E = 8)",
        report::sci(mwpm)
    );
}

// -------------------------------------------------- extension: compression

/// Syndrome compression (§7.6): sparse index coding shrinks the per-round
/// transmission and thus the bandwidth needed to preserve the decode
/// budget of Table 7.
fn compression(opts: &Options) {
    use astrea_core::SyndromeCompressor;
    use qec_circuit::Shot;
    println!("Extension: syndrome compression and bandwidth (d = 9, p = 1e-3)\n");
    let trials = preset(opts, 300_000);
    let ctx = ExperimentContext::new(9, 1e-3);
    // Per-round syndromes: (d² − 1) = 80 parity bits per round at d = 9
    // (both bases, matching §7.6's 80-bit figure).
    let round_bits = ctx.distance * ctx.distance - 1;
    let codec = SyndromeCompressor::new(round_bits);

    // Sample logical-cycle syndromes and derive per-round Hamming weights.
    let mut sampler = DemSampler::new(ctx.dem());
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut shot = Shot::default();
    let per_layer = ctx.gwt().len() / (ctx.distance + 1);
    let (mut total_raw, mut total_sparse) = (0u64, 0u64);
    let mut worst_round_bits = 0usize;
    for _ in 0..trials {
        sampler.sample_into(&mut rng, &mut shot);
        // Detector ids are round-major; count per round and double to
        // approximate both-basis traffic.
        for round in 0..=ctx.distance {
            let hw = shot
                .detectors
                .iter()
                .filter(|&&d| (d as usize) / per_layer == round)
                .count()
                * 2;
            total_raw += codec.raw_bits() as u64;
            let bits = codec.encoded_bits(hw);
            total_sparse += bits as u64;
            worst_round_bits = worst_round_bits.max(bits);
        }
    }
    let ratio = total_raw as f64 / total_sparse as f64;
    let rows = vec![
        vec![
            "raw bitmap".to_string(),
            format!("{}", codec.raw_bits()),
            "1.0x".to_string(),
        ],
        vec![
            "sparse (mean)".to_string(),
            format!(
                "{:.1}",
                total_sparse as f64 / (trials * (ctx.distance as u64 + 1)) as f64
            ),
            format!("{ratio:.1}x"),
        ],
        vec![
            "sparse (worst observed)".to_string(),
            worst_round_bits.to_string(),
            format!("{:.1}x", codec.raw_bits() as f64 / worst_round_bits as f64),
        ],
    ];
    print!(
        "{}",
        report::render_table(&["encoding", "bits/round", "bandwidth saving"], &rows)
    );
    println!(
        "\n(Table 7 needs 50 MBps for raw 80-bit rounds in 200 ns; a {ratio:.0}x \
         compression cuts that to ~{:.0} MBps)",
        50.0 / ratio
    );
}

// -------------------------------------------------- extension: edge kinds

/// How the circuit-level noise mass splits across §4.1's event classes
/// (space / time / space-time / boundary) at each distance.
fn edge_kinds(_opts: &Options) {
    println!("Extension: error-probability mass by space-time event class (p = 1e-3)\n");
    let mut rows = Vec::new();
    for d in [3usize, 5, 7] {
        let ctx = ExperimentContext::new(d, 1e-3);
        let kinds = ctx.graph().probability_by_kind();
        let total: f64 = kinds.iter().map(|&(_, p, _)| p).sum();
        for (kind, p, count) in kinds {
            rows.push(vec![
                d.to_string(),
                kind.to_string(),
                count.to_string(),
                report::sci(p),
                format!("{:.0}%", 100.0 * p / total),
            ]);
        }
    }
    print!(
        "{}",
        report::render_table(
            &["d", "event class", "edges", "total prob.", "share"],
            &rows
        )
    );
    println!("\n(every class of Figure 5 is populated; CNOT hooks dominate edge count)");
}

// ------------------------------------------------ extension: latency

/// Astrea-G latency profile by Hamming weight (§7.2/§7.4: "average
/// decoding latency of about 131 ns for p = 10⁻³ [d = 7] ... 450 ns
/// [d = 9] with the worst case being 1 µs").
fn latency_profile(opts: &Options) {
    use qec_circuit::Shot;
    println!("Extension: Astrea-G latency by Hamming weight (250 MHz model)\n");
    let trials = preset(opts, 300_000);
    let model = CycleModel::default();
    let mut rows = Vec::new();
    for d in [7usize, 9] {
        let ctx = ExperimentContext::new(d, 1e-3);
        let mut dec = AstreaGDecoder::new(ctx.gwt());
        let mut sampler = DemSampler::new(ctx.dem());
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut shot = Shot::default();
        // (count, total cycles, max cycles) per HW bucket.
        let mut buckets = [(0u64, 0u64, 0u64); 4]; // 0-2, 3-10, 11-20, >20
        let (mut total_cycles, mut shots, mut max_cycles) = (0u64, 0u64, 0u64);
        for _ in 0..trials {
            sampler.sample_into(&mut rng, &mut shot);
            let hw = shot.detectors.len();
            let p = dec.decode(&shot.detectors);
            let b = match hw {
                0..=2 => 0,
                3..=10 => 1,
                11..=20 => 2,
                _ => 3,
            };
            buckets[b].0 += 1;
            buckets[b].1 += p.cycles;
            buckets[b].2 = buckets[b].2.max(p.cycles);
            total_cycles += p.cycles;
            shots += 1;
            max_cycles = max_cycles.max(p.cycles);
        }
        for (label, (n, sum, max)) in ["HW 0-2", "HW 3-10", "HW 11-20", "HW >20"]
            .iter()
            .zip(buckets)
        {
            if n == 0 {
                continue;
            }
            rows.push(vec![
                d.to_string(),
                label.to_string(),
                n.to_string(),
                format!("{:.1}", model.to_ns(sum) / n as f64),
                format!("{:.0}", model.to_ns(max)),
            ]);
        }
        rows.push(vec![
            d.to_string(),
            "all".to_string(),
            shots.to_string(),
            format!("{:.1}", model.to_ns(total_cycles) / shots as f64),
            format!("{:.0}", model.to_ns(max_cycles)),
        ]);
    }
    print!(
        "{}",
        report::render_table(&["d", "bucket", "shots", "mean ns", "max ns"], &rows)
    );
    println!("\n(paper §7.2/§7.4: mean 131 ns at d = 7, 450 ns at d = 9, worst case 1 us)");
}

// ------------------------------------------------- extension: backlog

/// Real-time queueing: feed each decoder's latency stream into a FIFO
/// server clocked at the syndrome cadence (d µs per decoding window) and
/// measure the backlog — the quantitative version of §1's "software
/// decoders are too slow" argument (Figure 1b).
fn backlog(opts: &Options) {
    use astrea_experiments::realtime::simulate_backlog;
    println!("Extension: decode backlog at the real-time cadence (d = 7, p = 1e-3)\n");
    let windows = preset(opts, 60_000) as usize;
    let ctx = ExperimentContext::new(7, 1e-3);
    let period_ns = ctx.distance as f64 * 1000.0; // one window per logical cycle

    let mut sampler = DemSampler::new(ctx.dem());
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mwpm = MwpmDecoder::new(ctx.gwt());
    let mut astrea_g = AstreaGDecoder::new(ctx.gwt());
    let clock = CycleModel::default();

    let mut sw_lat = Vec::with_capacity(windows);
    let mut hw_lat = Vec::with_capacity(windows);
    for _ in 0..windows {
        let shot = sampler.sample(&mut rng);
        if shot.detectors.is_empty() {
            sw_lat.push(0.0);
            hw_lat.push(0.0);
            continue;
        }
        let t = Instant::now();
        let _ = mwpm.decode_full(&shot.detectors);
        sw_lat.push(t.elapsed().as_secs_f64() * 1e9);
        let p = astrea_g.decode(&shot.detectors);
        hw_lat.push(clock.to_ns(p.cycles));
    }

    let sw = simulate_backlog(period_ns, &sw_lat);
    let hw = simulate_backlog(period_ns, &hw_lat);
    let rows = vec![
        vec![
            "software MWPM (measured)".to_string(),
            sw.max_backlog.to_string(),
            format!("{:.0}", sw.p99_sojourn_ns),
            format!("{:.0}", sw.max_sojourn_ns),
            format!("{:.3}%", 100.0 * sw.late_fraction),
        ],
        vec![
            "Astrea-G (cycle model)".to_string(),
            hw.max_backlog.to_string(),
            format!("{:.0}", hw.p99_sojourn_ns),
            format!("{:.0}", hw.max_sojourn_ns),
            format!("{:.3}%", 100.0 * hw.late_fraction),
        ],
    ];
    print!(
        "{}",
        report::render_table(
            &[
                "decoder",
                "max backlog",
                "p99 sojourn ns",
                "max sojourn ns",
                "late windows"
            ],
            &rows
        )
    );
    println!(
        "\n({windows} decoding windows at one per {:.0} ns; a \"late\" window's \
         correction misses the next logical cycle. Astrea-G's bounded worst \
         case keeps the queue empty by construction.)",
        period_ns
    );
}
