//! Stratified logical-error-rate estimation (paper Appendix A).
//!
//! For operating points whose LER is too small to reach by direct
//! Monte-Carlo (the paper quotes `10⁻¹³` at `d = 11`; their evaluation
//! used up to 10¹¹ trials on a 1024-core cluster), the paper estimates
//!
//! ```text
//! LER ≈ Σₖ P_fail(k) · P_occ(k)
//! ```
//!
//! where `P_occ(k)` is the probability that exactly `k` error mechanisms
//! trigger in one logical cycle (a Poisson–binomial distribution computed
//! exactly by convolution here) and `P_fail(k)` is the decoder's failure
//! probability conditioned on `k` triggers (estimated by Monte-Carlo over
//! syndromes generated from exactly `k` mechanisms, drawn with probability
//! proportional to their rates).

use crate::harness::{DecoderFactory, ExperimentContext};
use astrea_core::batch::shot_seed;
use astrea_core::pipeline::{
    consume_tiles, tile_channel, TileQueue, TileScratch, DEFAULT_CHANNEL_DEPTH, DEFAULT_TILE_WORDS,
};
use decoding_graph::DecodeScratch;
use qec_circuit::tiles::TileLayout;
#[cfg(test)]
use qec_circuit::ErrorMechanism;
use qec_circuit::{BitTable, SyndromeTile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One stratum of the estimate: syndromes with exactly `k` triggered
/// mechanisms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KStratum {
    /// Number of triggered mechanisms.
    pub k: usize,
    /// Monte-Carlo trials in this stratum.
    pub trials: u64,
    /// Decoding failures in this stratum.
    pub failures: u64,
    /// `P_occ(k)`: probability of exactly `k` triggers per logical cycle.
    pub p_occ: f64,
}

impl KStratum {
    /// The conditional failure probability `P_fail(k)`.
    pub fn p_fail(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.failures as f64 / self.trials as f64
        }
    }
}

/// The result of a stratified LER estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct StratifiedEstimate {
    /// Per-`k` strata, `k = 1..=max_k`.
    pub strata: Vec<KStratum>,
    /// Probability mass beyond `max_k` (bounds the truncation error:
    /// the missing contribution is at most this value).
    pub truncated_mass: f64,
}

impl StratifiedEstimate {
    /// The stratified logical-error-rate estimate `Σₖ P_fail(k)·P_occ(k)`.
    pub fn ler(&self) -> f64 {
        self.strata.iter().map(|s| s.p_fail() * s.p_occ).sum()
    }

    /// Upper bound including the truncated tail (assumes every shot with
    /// more than `max_k` errors fails).
    pub fn ler_upper_bound(&self) -> f64 {
        self.ler() + self.truncated_mass
    }
}

/// Exact Poisson–binomial distribution `P(K = k)` for `k = 0..=max_k`
/// over independent mechanism probabilities, plus the truncated tail mass.
pub fn poisson_binomial(probabilities: &[f64], max_k: usize) -> (Vec<f64>, f64) {
    let mut dist = vec![0.0f64; max_k + 1];
    dist[0] = 1.0;
    let mut tail = 0.0f64;
    for &p in probabilities {
        // dist'[k] = dist[k]·(1−p) + dist[k−1]·p, processed descending.
        let spill = dist[max_k] * p;
        for k in (1..=max_k).rev() {
            dist[k] = dist[k] * (1.0 - p) + dist[k - 1] * p;
        }
        dist[0] *= 1.0 - p;
        // Mass leaving the tracked range. (Tail re-entry is impossible:
        // counts never decrease.)
        tail += spill;
    }
    (dist, tail)
}

/// Runs the stratified estimator on the streamed tile pipeline.
///
/// For each `k ∈ [1, max_k]`, draws `trials_per_k` syndromes from exactly
/// `k` distinct mechanisms (selected with probability proportional to
/// their rates), decodes each, and combines the conditional failure rates
/// with the exact Poisson–binomial occurrence probabilities. Each trial
/// seeds its own RNG from its `(stratum, trial)` index, so the estimate
/// is bit-identical for every thread count and tile split. Producer
/// threads pack trials into [`SyndromeTile`]s (XOR-toggling mechanism
/// symptoms into the bit-planes, so duplicate detectors cancel) and
/// consumers screen + decode them through the same
/// [`decode_tile`](astrea_core::pipeline::decode_tile) path as the direct
/// Monte-Carlo estimator: word-parallel screening, GWT-direct closed
/// forms, and the hard-syndrome cache all apply, and sampling overlaps
/// decoding instead of a per-chunk batch barrier.
pub fn estimate_stratified<'a>(
    ctx: &'a ExperimentContext,
    max_k: usize,
    trials_per_k: u64,
    threads: usize,
    seed: u64,
    factory: &DecoderFactory<'a>,
) -> StratifiedEstimate {
    let mechanisms = ctx.dem().mechanisms();
    let num_detectors = ctx.dem().num_detectors();
    let num_observables = ctx.dem().num_observables();
    let probs: Vec<f64> = mechanisms.iter().map(|m| m.probability).collect();
    let (occ, tail) = poisson_binomial(&probs, max_k);

    // Cumulative rates for weighted sampling.
    let mut cumulative = Vec::with_capacity(probs.len());
    let mut acc = 0.0;
    for &p in &probs {
        acc += p;
        cumulative.push(acc);
    }
    let total_rate = acc;

    let threads = threads.max(1);
    let strata: Vec<KStratum> = (1..=max_k)
        .map(|k| {
            let n = trials_per_k as usize;
            let stratum_seed = seed ^ ((k as u64) << 32);
            let layout = TileLayout::new(n, DEFAULT_TILE_WORDS);
            let producers = (threads / 4).max(1).min(layout.num_tiles().max(1));
            let (tx, rx) = tile_channel(DEFAULT_CHANNEL_DEPTH);
            let queue = TileQueue::new(rx);
            let failures: u64 = std::thread::scope(|scope| {
                let cumulative = &cumulative;
                for p in 0..producers {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        let mut chosen: Vec<usize> = Vec::with_capacity(k);
                        let mut t = p;
                        while t < layout.num_tiles() {
                            let (first_word, num_shots) = layout.tile(t);
                            let mut det = BitTable::new(num_detectors, num_shots);
                            let mut obs = BitTable::new(num_observables, num_shots);
                            for s in 0..num_shots {
                                let shot = (first_word * 64 + s) as u64;
                                let mut rng = StdRng::seed_from_u64(shot_seed(stratum_seed, shot));
                                sample_k_mechanisms(
                                    &mut rng,
                                    cumulative,
                                    total_rate,
                                    k,
                                    &mut chosen,
                                );
                                for &i in &chosen {
                                    let m = &mechanisms[i];
                                    for &d in &m.detectors {
                                        det.toggle(d as usize, s);
                                    }
                                    for b in 0..num_observables {
                                        if m.observables >> b & 1 == 1 {
                                            obs.toggle(b, s);
                                        }
                                    }
                                }
                            }
                            if tx.send(SyndromeTile::new(first_word, det, obs)).is_err() {
                                return;
                            }
                            t += producers;
                        }
                    });
                }
                drop(tx);
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let queue = queue.clone();
                        scope.spawn(move || {
                            let mut decoder = factory(ctx);
                            let mut scratch = DecodeScratch::new();
                            let mut tile_scratch = TileScratch::new();
                            consume_tiles(decoder.as_mut(), &mut scratch, &mut tile_scratch, &queue)
                                .failures
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .sum()
            });
            KStratum {
                k,
                trials: trials_per_k,
                failures,
                p_occ: occ[k],
            }
        })
        .collect();

    StratifiedEstimate {
        strata,
        truncated_mass: tail,
    }
}

/// Draws `k` distinct mechanism indices with probability proportional to
/// their rates (rejection on duplicates; fine for `k ≪ mechanisms`).
fn sample_k_mechanisms(
    rng: &mut StdRng,
    cumulative: &[f64],
    total: f64,
    k: usize,
    out: &mut Vec<usize>,
) {
    out.clear();
    while out.len() < k {
        let r = rng.gen::<f64>() * total;
        let idx = cumulative
            .partition_point(|&c| c < r)
            .min(cumulative.len() - 1);
        if !out.contains(&idx) {
            out.push(idx);
        }
    }
}

/// XORs the symptom sets of the chosen mechanisms into a sorted detector
/// list and an observable mask — the scalar reference for the packed
/// bit-plane toggling in [`estimate_stratified`], kept for the
/// differential tests.
#[cfg(test)]
fn combine(mechanisms: &[ErrorMechanism], chosen: &[usize]) -> (Vec<u32>, u32) {
    let mut dets: Vec<u32> = Vec::new();
    let mut obs = 0u32;
    for &i in chosen {
        dets.extend_from_slice(&mechanisms[i].detectors);
        obs ^= mechanisms[i].observables;
    }
    dets.sort_unstable();
    // XOR semantics: detectors hit an even number of times cancel.
    let mut folded = Vec::with_capacity(dets.len());
    let mut i = 0;
    while i < dets.len() {
        let mut j = i + 1;
        while j < dets.len() && dets[j] == dets[i] {
            j += 1;
        }
        if (j - i) % 2 == 1 {
            folded.push(dets[i]);
        }
        i = j;
    }
    (folded, obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blossom_mwpm::MwpmDecoder;

    #[test]
    fn poisson_binomial_matches_binomial_for_uniform_probs() {
        let probs = vec![0.1; 20];
        let (dist, tail) = poisson_binomial(&probs, 20);
        for (k, &d) in dist.iter().enumerate() {
            let expected = crate::analytic::binomial_pmf(20, k as u64, 0.1);
            assert!((d - expected).abs() < 1e-12, "k={k}: {d} vs {expected}");
        }
        assert!(tail.abs() < 1e-15);
    }

    #[test]
    fn poisson_binomial_truncation_tracks_lost_mass() {
        let probs = vec![0.5; 10];
        let (dist, tail) = poisson_binomial(&probs, 3);
        let kept: f64 = dist.iter().sum();
        assert!((kept + tail - 1.0).abs() < 1e-12);
        assert!(tail > 0.5); // most mass is above k = 3 here
    }

    #[test]
    fn single_error_stratum_never_fails_under_mwpm() {
        // P_fail(1) = 0: one mechanism is always decoded correctly by MWPM
        // (its own edge is the minimum-weight explanation)... except for
        // rare degenerate ties; require ≈ 0.
        let ctx = ExperimentContext::new(3, 1e-3);
        let factory: Box<DecoderFactory> = Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())));
        let est = estimate_stratified(&ctx, 2, 2_000, 2, 5, &*factory);
        let s1 = &est.strata[0];
        assert_eq!(s1.k, 1);
        assert!(
            s1.p_fail() < 0.01,
            "single errors misdecoded at rate {}",
            s1.p_fail()
        );
    }

    #[test]
    fn p_fail_increases_with_k() {
        let ctx = ExperimentContext::new(3, 1e-3);
        let factory: Box<DecoderFactory> = Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())));
        let est = estimate_stratified(&ctx, 4, 3_000, 2, 6, &*factory);
        let f: Vec<f64> = est.strata.iter().map(|s| s.p_fail()).collect();
        assert!(f[3] > f[0], "P_fail should grow with k: {f:?}");
    }

    #[test]
    fn stratified_ler_is_consistent_with_direct_monte_carlo() {
        // At a high error rate both estimators are viable; they must agree
        // within Monte-Carlo tolerance (factor ~2 here given the modest
        // trial counts and the conditional-sampling approximation).
        use crate::harness::estimate_ler;
        let ctx = ExperimentContext::new(3, 3e-3);
        let factory: Box<DecoderFactory> = Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())));
        let direct = estimate_ler(&ctx, 400_000, 4, 7, &*factory);
        let strat = estimate_stratified(&ctx, 8, 20_000, 4, 7, &*factory);
        let (a, b) = (direct.ler(), strat.ler());
        assert!(
            direct.failures > 20,
            "need failures, got {}",
            direct.failures
        );
        assert!(
            a / b < 2.5 && b / a < 2.5,
            "direct {a:.3e} vs stratified {b:.3e}"
        );
    }

    /// The barrier implementation this module used before the tile port:
    /// scalar [`combine`] into a `SyndromeBatch`, then [`decode_slice`].
    fn barrier_stratum_failures(ctx: &ExperimentContext, k: usize, trials: u64, seed: u64) -> u64 {
        use astrea_core::batch::{decode_slice, SyndromeBatchBuilder};
        let mechanisms = ctx.dem().mechanisms();
        let probs: Vec<f64> = mechanisms.iter().map(|m| m.probability).collect();
        let mut cumulative = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for &p in &probs {
            acc += p;
            cumulative.push(acc);
        }
        let stratum_seed = seed ^ ((k as u64) << 32);
        let mut chosen = Vec::with_capacity(k);
        let mut builder = SyndromeBatchBuilder::default();
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(shot_seed(stratum_seed, t));
            sample_k_mechanisms(&mut rng, &cumulative, acc, k, &mut chosen);
            let (dets, obs) = combine(mechanisms, &chosen);
            builder.push(&dets, obs);
        }
        let batch = builder.finish();
        let mut decoder = MwpmDecoder::new(ctx.gwt());
        let mut scratch = DecodeScratch::new();
        decode_slice(&mut decoder, &mut scratch, &batch, 0..batch.len()).failures
    }

    #[test]
    fn streamed_stratified_matches_barrier_reference() {
        // The tile-pipeline port must reproduce the retired batch-barrier
        // implementation bit-for-bit: same per-trial seeds, same XOR
        // cancellation, same decoder predictions through the screen and
        // caches.
        let ctx = ExperimentContext::new(3, 2e-3);
        let factory: Box<DecoderFactory> = Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())));
        let est = estimate_stratified(&ctx, 4, 1_500, 3, 9, &*factory);
        for s in &est.strata {
            let reference = barrier_stratum_failures(&ctx, s.k, 1_500, 9);
            assert_eq!(s.failures, reference, "k = {}", s.k);
        }
    }

    #[test]
    fn stratified_is_thread_count_invariant() {
        let ctx = ExperimentContext::new(3, 2e-3);
        let factory: Box<DecoderFactory> = Box::new(|c| Box::new(MwpmDecoder::new(c.gwt())));
        let a = estimate_stratified(&ctx, 3, 1_000, 1, 21, &*factory);
        let b = estimate_stratified(&ctx, 3, 1_000, 4, 21, &*factory);
        assert_eq!(a, b);
    }

    #[test]
    fn combine_cancels_duplicate_detectors() {
        let mechanisms = vec![
            ErrorMechanism {
                detectors: vec![1, 2],
                observables: 1,
                probability: 0.1,
            },
            ErrorMechanism {
                detectors: vec![2, 3],
                observables: 0,
                probability: 0.1,
            },
        ];
        let (dets, obs) = combine(&mechanisms, &[0, 1]);
        assert_eq!(dets, vec![1, 3]);
        assert_eq!(obs, 1);
    }
}
