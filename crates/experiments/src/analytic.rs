//! The analytical Hamming-weight upper-bound model (paper §4.2.1).
//!
//! Each syndrome-extraction error flips two syndrome bits with total
//! probability `8p` per parity qubit per round, so the number of
//! extraction errors is `E ~ Binomial(D, 8p)` with
//! `D = (d + 1) · (d² − 1)/2` syndrome bits, and the Hamming weight is
//! modeled as `H = 2E` (equation (1)). The model is an upper bound: real
//! error chains overlap and cancel, so observed weights run lower
//! (Figure 6).

/// The number of per-basis syndrome bits `D = (d + 1) · (d² − 1)/2` the
/// model draws over.
pub fn syndrome_bits(distance: usize) -> u64 {
    ((distance + 1) * (distance * distance - 1) / 2) as u64
}

/// `P(H = h)` under the analytical model — equation (1) of the paper.
/// Odd Hamming weights have probability zero (every modeled error flips
/// exactly two bits).
pub fn hamming_weight_probability(distance: usize, p: f64, h: usize) -> f64 {
    assert!((0.0..=1.0).contains(&p), "invalid probability {p}");
    if h % 2 == 1 {
        return 0.0;
    }
    let d = syndrome_bits(distance);
    let k = (h / 2) as u64;
    if k > d {
        return 0.0;
    }
    let q = 8.0 * p;
    binomial_pmf(d, k, q)
}

/// `P(H > h)` under the analytical model.
pub fn hamming_weight_tail(distance: usize, p: f64, h: usize) -> f64 {
    let d = syndrome_bits(distance) as usize;
    let mut tail = 0.0;
    let mut weight = h + 1;
    // Round up to the next even weight (odd weights have probability 0).
    if weight % 2 == 1 {
        weight += 1;
    }
    while weight <= 2 * d {
        tail += hamming_weight_probability(distance, p, weight);
        weight += 2;
    }
    tail
}

/// Binomial probability mass `P(X = k)` for `X ~ Binomial(n, q)`, computed
/// in log space for numerical stability at large `n` and small `q`.
pub fn binomial_pmf(n: u64, k: u64, q: f64) -> f64 {
    if k > n {
        return 0.0;
    }
    if q <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if q >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln = ln_choose(n, k) + k as f64 * q.ln() + (n - k) as f64 * (1.0 - q).ln();
    ln.exp()
}

/// `ln C(n, k)` via the log-gamma function (Stirling series — accurate to
/// well below Monte-Carlo noise for all arguments used here).
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// `ln n!` — exact accumulation for small `n`, Stirling's series beyond.
pub fn ln_factorial(n: u64) -> f64 {
    if n < 64 {
        (2..=n).map(|i| (i as f64).ln()).sum()
    } else {
        let x = n as f64;
        // Stirling series with three correction terms.
        x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + 1.0 / (12.0 * x)
            - 1.0 / (360.0 * x * x * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syndrome_bit_counts() {
        // D = (d + 1)(d² − 1)/2: 16 / 72 / 192 / 400 per Table 1.
        assert_eq!(syndrome_bits(3), 16);
        assert_eq!(syndrome_bits(5), 72);
        assert_eq!(syndrome_bits(7), 192);
        assert_eq!(syndrome_bits(9), 400);
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = 5;
        let p = 1e-3;
        let total: f64 = (0..=2 * syndrome_bits(d) as usize)
            .map(|h| hamming_weight_probability(d, p, h))
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn odd_weights_are_impossible() {
        assert_eq!(hamming_weight_probability(5, 1e-3, 3), 0.0);
        assert_eq!(hamming_weight_probability(5, 1e-3, 7), 0.0);
    }

    #[test]
    fn weights_decay_exponentially() {
        let d = 7;
        let p = 1e-4;
        let p2 = hamming_weight_probability(d, p, 2);
        let p4 = hamming_weight_probability(d, p, 4);
        let p6 = hamming_weight_probability(d, p, 6);
        assert!(p2 > 10.0 * p4);
        assert!(p4 > 10.0 * p6);
    }

    #[test]
    fn paper_insight_tail_beyond_10_is_below_ler_at_d7_p1e4() {
        // §4.2: at d = 7, p = 10⁻⁴ the probability of HW > 10 is below the
        // 6×10⁻⁹-scale logical error rate... under the *observed*
        // distribution; the analytic bound is looser but still tiny.
        let tail = hamming_weight_tail(7, 1e-4, 10);
        assert!(tail < 1e-4, "tail {tail}");
        // And at p = 10⁻³ the tail is orders of magnitude larger (Table 5).
        let tail_hi = hamming_weight_tail(7, 1e-3, 10);
        assert!(tail_hi > 100.0 * tail);
    }

    #[test]
    fn binomial_pmf_matches_direct_computation() {
        // Small case checked against exact arithmetic: C(4,2) 0.5^4 = 0.375.
        assert!((binomial_pmf(4, 2, 0.5) - 0.375).abs() < 1e-12);
        assert!((binomial_pmf(10, 0, 0.1) - 0.9f64.powi(10)).abs() < 1e-12);
        assert_eq!(binomial_pmf(3, 5, 0.1), 0.0);
    }

    #[test]
    fn ln_factorial_stirling_agrees_with_exact() {
        // Check continuity across the exact/Stirling switchover.
        let exact: f64 = (2..=70u64).map(|i| (i as f64).ln()).sum();
        assert!((ln_factorial(70) - exact).abs() < 1e-9);
    }
}
