//! Real-time queueing analysis: what a decoder's latency *distribution*
//! (not just its mean) does to a live QEC system.
//!
//! Syndromes arrive on a fixed cadence — one decoding window per logical
//! cycle, every `d` µs on Sycamore-class hardware (§3.4). A decoder whose
//! worst case exceeds the cadence builds a backlog; because the error
//! stream never pauses, backlog is latent decoherence: corrections land
//! ever further behind the state they correct. This module runs the
//! discrete-event simulation behind that argument (§1, Figure 1b): FIFO
//! service of an arrival stream under any latency sequence, reporting
//! backlog and sojourn statistics. Astrea's bounded worst case keeps the
//! queue empty by construction; software MWPM's heavy tail does not.

/// Result of a backlog simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct BacklogReport {
    /// Number of decoding windows simulated.
    pub windows: u64,
    /// Largest queue length observed at any arrival (including the
    /// arriving window).
    pub max_backlog: usize,
    /// Mean queue length at arrivals.
    pub mean_backlog: f64,
    /// Largest sojourn time (arrival → decode completion) in nanoseconds.
    pub max_sojourn_ns: f64,
    /// 99th-percentile sojourn time in nanoseconds.
    pub p99_sojourn_ns: f64,
    /// Fraction of windows whose result arrived more than one full cadence
    /// late — corrections that could not influence the next logical cycle.
    pub late_fraction: f64,
}

/// Simulates FIFO decoding of windows arriving every `period_ns`, with the
/// given per-window service (decode) times.
///
/// # Panics
///
/// Panics if `period_ns` is not positive, any latency is negative, or
/// `latencies_ns` is empty.
pub fn simulate_backlog(period_ns: f64, latencies_ns: &[f64]) -> BacklogReport {
    assert!(period_ns > 0.0, "arrival period must be positive");
    assert!(!latencies_ns.is_empty(), "need at least one window");

    let mut completion_times = Vec::with_capacity(latencies_ns.len());
    let mut server_free_at = 0.0f64;
    for (i, &service) in latencies_ns.iter().enumerate() {
        assert!(service >= 0.0, "negative latency {service}");
        let arrival = i as f64 * period_ns;
        let start = server_free_at.max(arrival);
        server_free_at = start + service;
        completion_times.push(server_free_at);
    }

    // Backlog at each arrival: windows arrived but not yet completed.
    let mut max_backlog = 0usize;
    let mut backlog_sum = 0u64;
    for (i, _) in latencies_ns.iter().enumerate() {
        let arrival = i as f64 * period_ns;
        // Windows j ≤ i with completion > arrival are still in the system.
        // completion_times is nondecreasing, so binary search suffices.
        let done = completion_times[..=i].partition_point(|&c| c <= arrival);
        let backlog = i + 1 - done;
        max_backlog = max_backlog.max(backlog);
        backlog_sum += backlog as u64;
    }

    let mut sojourns: Vec<f64> = completion_times
        .iter()
        .enumerate()
        .map(|(i, &c)| c - i as f64 * period_ns)
        .collect();
    let late = sojourns.iter().filter(|&&s| s > period_ns).count();
    sojourns.sort_by(f64::total_cmp);
    let n = sojourns.len();

    BacklogReport {
        windows: n as u64,
        max_backlog,
        mean_backlog: backlog_sum as f64 / n as f64,
        max_sojourn_ns: sojourns[n - 1],
        p99_sojourn_ns: sojourns[((n as f64 * 0.99) as usize).min(n - 1)],
        late_fraction: late as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_queue_when_service_is_fast() {
        // Service always well under the period: backlog stays at 1 (the
        // window being served) and nothing is late.
        let lat = vec![100.0; 1000];
        let r = simulate_backlog(1000.0, &lat);
        assert_eq!(r.max_backlog, 1);
        assert_eq!(r.late_fraction, 0.0);
        assert_eq!(r.max_sojourn_ns, 100.0);
    }

    #[test]
    fn one_slow_window_creates_transient_backlog() {
        // One 5-period stall in an otherwise fast stream.
        let mut lat = vec![100.0; 100];
        lat[10] = 5000.0;
        let r = simulate_backlog(1000.0, &lat);
        assert!(r.max_backlog >= 5, "max backlog {}", r.max_backlog);
        assert!(r.late_fraction > 0.0);
        // The queue drains: the last window is on time again.
        let tail = simulate_backlog(1000.0, &lat[90..]);
        assert_eq!(tail.late_fraction, 0.0);
    }

    #[test]
    fn overload_grows_without_bound() {
        // Mean service above the period: the backlog at the end is
        // proportional to the stream length.
        // Utilization 1.5: a third of each period's work accumulates, so
        // the final backlog is ~n/3.
        let lat = vec![1500.0; 400];
        let r = simulate_backlog(1000.0, &lat);
        assert!(r.max_backlog > 120, "max backlog {}", r.max_backlog);
        assert!(r.late_fraction > 0.9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_period() {
        simulate_backlog(0.0, &[1.0]);
    }
}
