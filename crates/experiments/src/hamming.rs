//! Hamming-weight distribution measurement (paper §4.2.2, Table 2,
//! Table 5, Figure 6).

use crate::harness::ExperimentContext;
use astrea_core::batch::shot_seed;
use qec_circuit::{DemSampler, Shot};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An empirical Hamming-weight histogram over sampled syndromes.
#[derive(Debug, Clone, Default)]
pub struct HammingHistogram {
    counts: Vec<u64>,
    trials: u64,
}

impl HammingHistogram {
    /// Samples `trials` syndromes and histograms their Hamming weights,
    /// splitting the work across `threads` threads. Each shot seeds its
    /// own RNG from its index, so the histogram depends only on
    /// `(trials, seed)`.
    pub fn sample(
        ctx: &ExperimentContext,
        trials: u64,
        threads: usize,
        seed: u64,
    ) -> HammingHistogram {
        let threads = threads.max(1);
        let n = trials as usize;
        let chunk = n.div_ceil(threads).max(1);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for start in (0..n).step_by(chunk) {
                let end = (start + chunk).min(n);
                handles.push(scope.spawn(move || {
                    let mut sampler = DemSampler::new(ctx.dem());
                    let mut local = HammingHistogram::default();
                    let mut shot = Shot::default();
                    for i in start..end {
                        let mut rng = StdRng::seed_from_u64(shot_seed(seed, i as u64));
                        sampler.sample_into(&mut rng, &mut shot);
                        local.record(shot.hamming_weight());
                    }
                    local
                }));
            }
            let mut total = HammingHistogram::default();
            for h in handles {
                total.merge(&h.join().expect("worker panicked"));
            }
            total
        })
    }

    fn record(&mut self, hw: usize) {
        if self.counts.len() <= hw {
            self.counts.resize(hw + 1, 0);
        }
        self.counts[hw] += 1;
        self.trials += 1;
    }

    fn merge(&mut self, other: &HammingHistogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.trials += other.trials;
    }

    /// Total sampled trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Empirical `P(HW = h)`.
    pub fn probability(&self, h: usize) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.counts.get(h).copied().unwrap_or(0) as f64 / self.trials as f64
    }

    /// Empirical `P(a ≤ HW ≤ b)` — the paper's Table 2 groups weights as
    /// 0, 1–2, 3–4, 5–6, 7–10, > 10.
    pub fn probability_range(&self, a: usize, b: usize) -> f64 {
        (a..=b).map(|h| self.probability(h)).sum()
    }

    /// Empirical `P(HW > h)`.
    pub fn tail_probability(&self, h: usize) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        let tail: u64 = self.counts.iter().skip(h + 1).sum();
        tail as f64 / self.trials as f64
    }

    /// The largest observed Hamming weight.
    pub fn max_weight(&self) -> usize {
        self.counts.len().saturating_sub(1)
    }

    /// Mean observed Hamming weight.
    pub fn mean(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(h, &c)| h as u64 * c)
            .sum();
        sum as f64 / self.trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_probabilities_sum_to_one() {
        let ctx = ExperimentContext::new(3, 5e-3);
        let h = HammingHistogram::sample(&ctx, 20_000, 3, 1);
        assert_eq!(h.trials(), 20_000);
        let total: f64 = (0..=h.max_weight()).map(|w| h.probability(w)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_weight_dominates_at_low_p() {
        // Table 2: P(HW = 0) = 0.99 at d = 3, p = 10⁻⁴.
        let ctx = ExperimentContext::new(3, 1e-4);
        let h = HammingHistogram::sample(&ctx, 50_000, 4, 2);
        assert!(h.probability(0) > 0.97, "P(0) = {}", h.probability(0));
    }

    #[test]
    fn higher_p_shifts_weight_up() {
        let lo = HammingHistogram::sample(&ExperimentContext::new(3, 1e-4), 20_000, 2, 3);
        let hi = HammingHistogram::sample(&ExperimentContext::new(3, 5e-3), 20_000, 2, 3);
        assert!(hi.mean() > 5.0 * lo.mean());
    }

    #[test]
    fn range_and_tail_are_consistent() {
        let ctx = ExperimentContext::new(3, 5e-3);
        let h = HammingHistogram::sample(&ctx, 10_000, 2, 4);
        let all = h.probability_range(0, h.max_weight());
        assert!((all - 1.0).abs() < 1e-9);
        let split = h.probability_range(0, 4) + h.tail_probability(4);
        assert!((split - 1.0).abs() < 1e-9);
    }
}
