//! Matching graphs, all-pairs shortest paths, and the Global Weight Table.
//!
//! Surface-code decoding reduces to minimum-weight perfect matching over the
//! *detectors* that fired. This crate provides the shared infrastructure
//! every decoder in the workspace consumes:
//!
//! * [`MatchingGraph`] — the sparse detector graph derived from a circuit's
//!   [detector error model](qec_circuit::DetectorErrorModel): one node per
//!   detector, one weighted edge per elementary error mechanism (with
//!   multi-detector mechanisms decomposed into edges), plus boundary edges.
//! * [`GlobalWeightTable`] — the paper's GWT (§5.1): an ℓ×ℓ table of 8-bit
//!   quantized weights `−log₁₀ P(pair)` for every detector pair, produced by
//!   all-pairs Dijkstra over the matching graph, with the boundary weight of
//!   each detector on the diagonal. An observable-parity matrix rides along
//!   so that any matching implies a logical-correction prediction.
//! * [`Decoder`] / [`Prediction`] — the trait every decoder implements.
//!
//! ```
//! use decoding_graph::DecodingContext;
//! use qec_circuit::{build_memory_z_circuit, NoiseModel};
//! use surface_code::SurfaceCode;
//!
//! let code = SurfaceCode::new(3)?;
//! let circuit = build_memory_z_circuit(&code, 3, NoiseModel::depolarizing(1e-3));
//! let ctx = DecodingContext::from_circuit(&circuit);
//! assert_eq!(ctx.gwt().len(), 16); // Table 1: syndrome-vector length at d=3
//! # Ok::<(), surface_code::InvalidDistance>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod decoder;
mod graph;
pub mod graph_pd;
mod gwt;
mod local;
pub mod ondemand;
mod paths;
mod scratch;

pub use context::{DecodingContext, GWT_AUTO_BUDGET_BYTES};
pub use decoder::{Decoder, Prediction};
pub use graph::{Edge, EdgeKind, MatchingGraph};
pub use graph_pd::{GraphPdScratch, GraphPdStats};
pub use gwt::{GlobalWeightTable, QuantizedBlock, MAX_GATHER_NODES};
pub use local::{BoundaryTable, LocalWeightProvider, LocalWeightStats, WeightSource};
pub use ondemand::{OndemandScratch, OndemandStats};
pub use paths::PathReconstructor;
pub use scratch::{DecodeScratch, RepEdge, SparseBlossomScratch};
