//! On-demand sparse staging for the deep tail: per-pair deadline
//! certificates over the decoding graph.
//!
//! [`LocalWeightProvider::stage`](crate::LocalWeightProvider::stage) runs
//! one truncated Dijkstra per fired detector out to the *maximum* settle
//! bound over all of its pair targets. At large distances that radius is
//! dominated by the few far pairs of the giant bulk cluster, so every
//! source search floods most of the lattice — `O(k · ℓ)` settles per shot
//! and ~99 % of deep-tail decode time (measured: 367 ms of a 370 ms
//! d = 31 shot is staging).
//!
//! [`stage_ondemand`](crate::LocalWeightProvider::stage_ondemand) keeps
//! the block bit-compatible while touching a fraction of that graph, by
//! exploiting three provable facts about what the decoders actually read:
//!
//! * **Landmark (ALT) exclusion.** The provider precomputes exact
//!   Dijkstra distances from a handful of farthest-point-sampled
//!   detectors; the triangle inequality `d(i,j) ≥ |d(l,i) − d(l,j)|`
//!   then certifies most far pairs dominated in O(landmarks) per pair —
//!   no graph search at all, and far tighter than the coordinate slopes
//!   on the diagonal error mechanisms that dominate bulk chains.
//! * **Upper-triangle contract.** Every decode consumer — the cluster
//!   decomposition, the subset DP's adjacency and transitions, the closed
//!   forms, the sparse blossom's staging loop (which queries `(u, v)` only
//!   for `u < v` and mirrors), and the mate folds — reads pair `(i, j)`
//!   exclusively through the row of `min(i, j)`. Row `i` therefore only
//!   searches for targets `j > i`, halving the settle volume outright.
//! * **Per-pair deadline certificates.** Dijkstra settles nodes in
//!   nondecreasing distance, so the moment the settle frontier passes
//!   `bound(i, j) = max(bᵢ + bⱼ, (qbᵢ + qbⱼ + 1)/scale)` with `j` still
//!   unsettled, `d(i, j) > bound(i, j)` is *proven* — the pair is
//!   dominated by boundary matching in both weight domains and its entry
//!   can be left `INFINITY` immediately (the same substitution argument
//!   the staged path already relies on for its radius truncation, applied
//!   per target instead of per row). Each search keeps a deadline queue of
//!   its unresolved targets sorted by bound; the active radius is the
//!   largest *unresolved* bound and shrinks as targets settle or expire,
//!   and frontier pushes beyond it are skipped.
//!
//! The settled entries themselves come from the identical relaxation loop
//! `stage` uses — same heap order `(distance, node)`, same strict-`<`
//! relaxation, same bound and exclusion formulas — so every value and
//! parity the decoders consume is bit-identical to the staged (and GWT)
//! path. CI enforces this differentially at d ∈ {3, 5, 7, 9} on top of
//! the in-crate block-equivalence tests.
//!
//! All per-shot bookkeeping lives in an [`OndemandScratch`] owned by the
//! worker's `DecodeScratch`: buffers grow once and are reused, so
//! steady-state staging performs no allocation.

/// Work counters for the on-demand staging engine, threaded through the
/// pipeline's counters so benches and smoke tests can see the deep tail
/// working (and assert it is non-idle).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OndemandStats {
    /// Calls to
    /// [`stage_ondemand`](crate::LocalWeightProvider::stage_ondemand)
    /// (one per deep shot that reaches the backend).
    pub stages: u64,
    /// Stagings answered by the staged-block memo (identical detector
    /// list staged on-demand again — replayed shots on served streams).
    pub memo_hits: u64,
    /// Regions grown: per-source deadline-bounded Dijkstra searches.
    pub regions: u64,
    /// Nodes settled across all regions (the grown volume).
    pub settled: u64,
    /// Pair edges discovered: targets settled within their bound, i.e.
    /// pairs staged with an exact weight (region/target collisions).
    pub collisions: u64,
    /// Pairs certified dominated by an expired deadline — left
    /// `INFINITY` without the frontier ever reaching the target.
    pub deadline_pruned: u64,
    /// Pairs excluded up front by a coordinate or landmark lower bound
    /// (never searched for at all).
    pub excluded: u64,
}

impl OndemandStats {
    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &OndemandStats) {
        self.stages += other.stages;
        self.memo_hits += other.memo_hits;
        self.regions += other.regions;
        self.settled += other.settled;
        self.collisions += other.collisions;
        self.deadline_pruned += other.deadline_pruned;
        self.excluded += other.excluded;
    }

    /// True when no on-demand staging ran (used by smoke asserts).
    pub fn is_idle(&self) -> bool {
        self.stages == 0
    }

    /// The work done since `baseline` was captured (saturating, so a
    /// counter reset between captures reads as zero rather than
    /// wrapping). The pipeline uses this to attribute a worker's
    /// cumulative counters to individual tiles.
    pub fn delta_since(&self, baseline: &OndemandStats) -> OndemandStats {
        OndemandStats {
            stages: self.stages.saturating_sub(baseline.stages),
            memo_hits: self.memo_hits.saturating_sub(baseline.memo_hits),
            regions: self.regions.saturating_sub(baseline.regions),
            settled: self.settled.saturating_sub(baseline.settled),
            collisions: self.collisions.saturating_sub(baseline.collisions),
            deadline_pruned: self
                .deadline_pruned
                .saturating_sub(baseline.deadline_pruned),
            excluded: self.excluded.saturating_sub(baseline.excluded),
        }
    }
}

/// Per-worker bookkeeping arena for
/// [`stage_ondemand`](crate::LocalWeightProvider::stage_ondemand): the
/// per-source deadline queue plus its resolution state. Owned by
/// `DecodeScratch` so the buffers persist across shots — grown once,
/// reused forever, zero steady-state allocation.
#[derive(Debug, Clone, Default)]
pub struct OndemandScratch {
    /// Deadline queue of the current search: `(bound, target slot)`
    /// sorted ascending by bound (ties by slot).
    pub(crate) deadlines: Vec<(f64, u32)>,
    /// Position of target slot `j` in `deadlines` (`u32::MAX` when `j`
    /// is not a target of the current search).
    pub(crate) pos: Vec<u32>,
    /// Resolution flags paired with `deadlines` (settled or expired).
    pub(crate) resolved: Vec<bool>,
    /// Work counters accumulated by this worker since construction (the
    /// pipeline harvests deltas per tile).
    pub stats: OndemandStats,
}

impl OndemandScratch {
    /// A fresh, empty arena.
    pub fn new() -> OndemandScratch {
        OndemandScratch::default()
    }

    /// Clears the bookkeeping (not the accumulated stats) without
    /// releasing capacity.
    pub fn clear(&mut self) {
        self.deadlines.clear();
        self.pos.clear();
        self.resolved.clear();
    }
}
