//! Shortest-path reconstruction: turning a matching into a physical
//! correction.
//!
//! The Global Weight Table stores only the *weight* and *observable
//! parity* of the most likely error chain between two detectors — all a
//! memory experiment needs. A real control system, however, applies the
//! correction (or tracks it in its Pauli frame), which requires the actual
//! chain: the sequence of matching-graph edges along the shortest path
//! (§2.2: "errors are corrected using the shortest path between the parity
//! qubits"). This module reconstructs those chains on demand.

use crate::graph::MatchingGraph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reconstructs shortest correction chains over a matching graph.
///
/// Runs Dijkstra per query; for bulk decoding keep the
/// [`GlobalWeightTable`](crate::GlobalWeightTable) and only reconstruct
/// chains for the matchings actually applied.
///
/// ```
/// use decoding_graph::{DecodingContext, PathReconstructor};
/// use qec_circuit::NoiseModel;
/// use surface_code::SurfaceCode;
///
/// let code = SurfaceCode::new(3)?;
/// let ctx = DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(1e-3));
/// let paths = PathReconstructor::new(ctx.graph());
/// let chain = paths.pair_path(0, 1).expect("detectors are connected");
/// let total: f64 = chain.iter().map(|&e| ctx.graph().edges()[e as usize].weight).sum();
/// assert!((total - ctx.gwt().pair_weight(0, 1)).abs() < 1e-9);
/// # Ok::<(), surface_code::InvalidDistance>(())
/// ```
#[derive(Debug, Clone)]
pub struct PathReconstructor<'a> {
    graph: &'a MatchingGraph,
}

impl<'a> PathReconstructor<'a> {
    /// Creates a reconstructor over the graph.
    pub fn new(graph: &'a MatchingGraph) -> PathReconstructor<'a> {
        PathReconstructor { graph }
    }

    /// The edge ids of the minimum-weight chain flipping detectors `u` and
    /// `v`, or `None` if they are not connected without crossing the
    /// boundary.
    pub fn pair_path(&self, u: u32, v: u32) -> Option<Vec<u32>> {
        self.dijkstra(u, Target::Node(v))
    }

    /// The edge ids of the minimum-weight chain connecting detector `u` to
    /// the lattice boundary (ending in a boundary edge), or `None` if the
    /// graph has no boundary reachable from `u`.
    pub fn boundary_path(&self, u: u32) -> Option<Vec<u32>> {
        self.dijkstra(u, Target::Boundary)
    }

    fn dijkstra(&self, src: u32, target: Target) -> Option<Vec<u32>> {
        let n = self.graph.num_detectors();
        let mut dist = vec![f64::INFINITY; n];
        let mut via: Vec<Option<u32>> = vec![None; n]; // edge used to reach node
        dist[src as usize] = 0.0;
        let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
        heap.push(Reverse((OrdF64(0.0), src)));

        let mut best_boundary: Option<(f64, u32, u32)> = None; // (cost, node, boundary edge)
        while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            if let Target::Node(t) = target {
                if u == t {
                    break;
                }
            }
            for &ei in self.graph.incident_edges(u) {
                let e = &self.graph.edges()[ei as usize];
                match e.v {
                    None => {
                        if matches!(target, Target::Boundary) {
                            let cost = d + e.weight;
                            if best_boundary.is_none_or(|(c, _, _)| cost < c) {
                                best_boundary = Some((cost, u, ei));
                            }
                        }
                    }
                    Some(v) => {
                        let w = if e.u == u { v } else { e.u };
                        let nd = d + e.weight;
                        if nd < dist[w as usize] {
                            dist[w as usize] = nd;
                            via[w as usize] = Some(ei);
                            heap.push(Reverse((OrdF64(nd), w)));
                        }
                    }
                }
            }
        }

        let (mut cursor, mut path) = match target {
            Target::Node(t) => {
                if !dist[t as usize].is_finite() {
                    return None;
                }
                (t, Vec::new())
            }
            Target::Boundary => {
                let (_, node, edge) = best_boundary?;
                (node, vec![edge])
            }
        };
        while cursor != src {
            let ei = via[cursor as usize].expect("reached node has a via edge");
            path.push(ei);
            let e = &self.graph.edges()[ei as usize];
            cursor = if e.u == cursor {
                e.v.expect("via edges are internal")
            } else {
                e.u
            };
        }
        path.reverse();
        Some(path)
    }
}

#[derive(Debug, Clone, Copy)]
enum Target {
    Node(u32),
    Boundary,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::DecodingContext;
    use qec_circuit::NoiseModel;
    use surface_code::SurfaceCode;

    fn ctx() -> DecodingContext {
        let code = SurfaceCode::new(5).unwrap();
        DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(1e-3))
    }

    #[test]
    fn pair_path_weight_matches_gwt() {
        let ctx = ctx();
        let recon = PathReconstructor::new(ctx.graph());
        let n = ctx.gwt().len() as u32;
        for (u, v) in [(0u32, 1u32), (0, n - 1), (3, 17), (n / 2, n / 2 + 5)] {
            let expected = ctx.gwt().pair_weight(u, v);
            match recon.pair_path(u, v) {
                Some(path) => {
                    let total: f64 = path
                        .iter()
                        .map(|&e| ctx.graph().edges()[e as usize].weight)
                        .sum();
                    assert!(
                        (total - expected).abs() < 1e-9,
                        "({u},{v}): path {total} vs gwt {expected}"
                    );
                }
                None => assert!(expected.is_infinite()),
            }
        }
    }

    #[test]
    fn pair_path_obs_parity_matches_gwt() {
        let ctx = ctx();
        let recon = PathReconstructor::new(ctx.graph());
        let n = ctx.gwt().len() as u32;
        let mut checked = 0;
        for u in (0..n).step_by(7) {
            for v in (1..n).step_by(11) {
                if u == v {
                    continue;
                }
                if let Some(path) = recon.pair_path(u, v) {
                    let obs = path.iter().fold(0u32, |acc, &e| {
                        acc ^ ctx.graph().edges()[e as usize].observables
                    });
                    assert_eq!(obs, ctx.gwt().pair_obs(u, v), "({u},{v})");
                    checked += 1;
                }
            }
        }
        assert!(checked > 20);
    }

    #[test]
    fn pair_path_endpoints_telescope() {
        // XOR-ing each edge's endpoints must leave exactly {u, v}.
        let ctx = ctx();
        let recon = PathReconstructor::new(ctx.graph());
        let (u, v) = (2u32, 40u32);
        let path = recon.pair_path(u, v).expect("connected");
        let mut parity = vec![false; ctx.graph().num_detectors()];
        for &ei in &path {
            let e = &ctx.graph().edges()[ei as usize];
            parity[e.u as usize] = !parity[e.u as usize];
            let w = e.v.expect("internal edge");
            parity[w as usize] = !parity[w as usize];
        }
        let flipped: Vec<u32> = parity
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i as u32))
            .collect();
        assert_eq!(flipped, vec![u.min(v), u.max(v)]);
    }

    #[test]
    fn boundary_path_weight_matches_gwt() {
        let ctx = ctx();
        let recon = PathReconstructor::new(ctx.graph());
        for u in 0..ctx.gwt().len() as u32 {
            let path = recon.boundary_path(u).expect("boundary reachable");
            let total: f64 = path
                .iter()
                .map(|&e| ctx.graph().edges()[e as usize].weight)
                .sum();
            assert!(
                (total - ctx.gwt().boundary_weight(u)).abs() < 1e-9,
                "node {u}: path {total} vs gwt {}",
                ctx.gwt().boundary_weight(u)
            );
            // The path must end in exactly one boundary edge.
            let boundary_edges = path
                .iter()
                .filter(|&&e| ctx.graph().edges()[e as usize].v.is_none())
                .count();
            assert_eq!(boundary_edges, 1);
        }
    }

    #[test]
    fn direct_edges_are_never_beaten_by_much() {
        // For every internal edge, the reconstructed shortest path can only
        // be at most as heavy as the edge itself; for the cheapest edge in
        // the graph it must be the edge itself.
        let ctx = ctx();
        let recon = PathReconstructor::new(ctx.graph());
        let cheapest = ctx
            .graph()
            .edges()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.v.is_some())
            .min_by(|a, b| a.1.weight.total_cmp(&b.1.weight))
            .expect("graph has internal edges");
        let path = recon
            .pair_path(cheapest.1.u, cheapest.1.v.unwrap())
            .unwrap();
        assert_eq!(path, vec![cheapest.0 as u32]);
        for e in ctx
            .graph()
            .edges()
            .iter()
            .filter(|e| e.v.is_some())
            .take(50)
        {
            let path = recon.pair_path(e.u, e.v.unwrap()).unwrap();
            let total: f64 = path
                .iter()
                .map(|&i| ctx.graph().edges()[i as usize].weight)
                .sum();
            assert!(total <= e.weight + 1e-9);
        }
    }
}
