//! Bundled decoding context: circuit, error model, graph, and weight
//! backend (Global Weight Table or GWT-free boundary table).

use crate::graph::MatchingGraph;
use crate::gwt::GlobalWeightTable;
use crate::local::{BoundaryTable, WeightSource};
use qec_circuit::{build_memory_z_circuit, Circuit, DetectorErrorModel, NoiseModel};
use surface_code::SurfaceCode;

/// Largest projected Global Weight Table footprint (quantized + exact +
/// observable matrices, 13 bytes per entry) that [`WeightSource::Auto`]
/// still materializes. d ≤ 13 memory experiments stay under it (~18 MB at
/// d = 13); d ≥ 15 (~42 MB and up, ~3 GB at d = 31) automatically go
/// GWT-free.
pub const GWT_AUTO_BUDGET_BYTES: usize = 32 << 20;

/// Bytes per GWT entry: 1 (quantized u8) + 8 (exact f64) + 4 (obs u32).
const GWT_BYTES_PER_ENTRY: usize = 13;

/// Everything a decoder (and the experiment harness) needs for one
/// `(distance, rounds, noise)` configuration, computed once and shared.
///
/// Building the context performs the expensive one-time work: detector
/// error model extraction, the boundary-distance table, and — under
/// [`WeightSource::Gwt`] (or [`WeightSource::Auto`] within budget) — the
/// all-pairs Dijkstra behind the [`GlobalWeightTable`]. Under
/// [`WeightSource::Local`] no table is materialized: memory stays `O(ℓ +
/// edges)` and decoders compute pair weights on demand, which is what
/// makes d ≥ 15 reachable. The context is immutable afterwards and can be
/// shared across threads.
#[derive(Debug, Clone)]
pub struct DecodingContext {
    circuit: Circuit,
    dem: DetectorErrorModel,
    graph: MatchingGraph,
    gwt: Option<GlobalWeightTable>,
    boundary: BoundaryTable,
}

impl DecodingContext {
    /// Builds the context for a surface-code Z-memory experiment with
    /// `rounds = d`, the paper's standard configuration, choosing the
    /// weight backend automatically.
    pub fn for_memory_experiment(code: &SurfaceCode, noise: NoiseModel) -> DecodingContext {
        DecodingContext::for_memory_experiment_with(code, noise, WeightSource::Auto)
    }

    /// [`Self::for_memory_experiment`] with an explicit weight backend.
    pub fn for_memory_experiment_with(
        code: &SurfaceCode,
        noise: NoiseModel,
        source: WeightSource,
    ) -> DecodingContext {
        let circuit = build_memory_z_circuit(code, code.distance(), noise);
        DecodingContext::from_circuit_with(&circuit, source)
    }

    /// Builds the context from an arbitrary annotated circuit, choosing
    /// the weight backend automatically.
    pub fn from_circuit(circuit: &Circuit) -> DecodingContext {
        DecodingContext::from_circuit_with(circuit, WeightSource::Auto)
    }

    /// [`Self::from_circuit`] with an explicit weight backend.
    pub fn from_circuit_with(circuit: &Circuit, source: WeightSource) -> DecodingContext {
        let dem = circuit.detector_error_model();
        let graph = MatchingGraph::build(circuit, &dem);
        let boundary = BoundaryTable::new(&graph);
        let materialize = match source {
            WeightSource::Gwt => true,
            WeightSource::Local => false,
            WeightSource::Auto => {
                projected_gwt_bytes(graph.num_detectors()) <= GWT_AUTO_BUDGET_BYTES
            }
        };
        let gwt = materialize.then(|| {
            GlobalWeightTable::with_scale_and_boundary(&graph, boundary.scale(), &boundary)
        });
        DecodingContext {
            circuit: circuit.clone(),
            dem,
            graph,
            gwt,
            boundary,
        }
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The extracted detector error model.
    pub fn dem(&self) -> &DetectorErrorModel {
        &self.dem
    }

    /// The sparse matching graph.
    pub fn graph(&self) -> &MatchingGraph {
        &self.graph
    }

    /// The Global Weight Table.
    ///
    /// # Panics
    ///
    /// Panics if the context is GWT-free ([`WeightSource::Local`], or
    /// [`WeightSource::Auto`] past the memory budget). GWT-only decoders
    /// keep this accessor; backend-agnostic code should construct through
    /// the context (e.g. `MwpmDecoder::for_context`) or use
    /// [`Self::try_gwt`].
    pub fn gwt(&self) -> &GlobalWeightTable {
        self.try_gwt().unwrap_or_else(|| {
            panic!(
                "context is GWT-free (ℓ = {}, projected table {} bytes): \
                 use a WeightSource::Local-aware decoder or build with WeightSource::Gwt",
                self.graph.num_detectors(),
                self.gwt_projected_bytes(),
            )
        })
    }

    /// The Global Weight Table, if this context materialized one.
    pub fn try_gwt(&self) -> Option<&GlobalWeightTable> {
        self.gwt.as_ref()
    }

    /// The per-detector boundary-distance table (always available; under
    /// a GWT it is bit-identical to the table's diagonal).
    pub fn boundary(&self) -> &BoundaryTable {
        &self.boundary
    }

    /// The resolved weight backend: [`WeightSource::Gwt`] when a table was
    /// materialized, [`WeightSource::Local`] otherwise (never `Auto`).
    pub fn weight_source(&self) -> WeightSource {
        if self.gwt.is_some() {
            WeightSource::Gwt
        } else {
            WeightSource::Local
        }
    }

    /// What a Global Weight Table for this context would occupy
    /// (quantized + exact + observable matrices), whether or not one was
    /// built — the denominator of the local path's memory win.
    pub fn gwt_projected_bytes(&self) -> usize {
        projected_gwt_bytes(self.graph.num_detectors())
    }
}

/// Projected GWT footprint for a detector count.
fn projected_gwt_bytes(num_detectors: usize) -> usize {
    num_detectors * num_detectors * GWT_BYTES_PER_ENTRY
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_context_has_consistent_sizes() {
        let code = SurfaceCode::new(3).unwrap();
        let ctx = DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(1e-3));
        assert_eq!(ctx.circuit().num_detectors(), 16);
        assert_eq!(ctx.dem().num_detectors(), 16);
        assert_eq!(ctx.graph().num_detectors(), 16);
        assert_eq!(ctx.gwt().len(), 16);
        assert_eq!(ctx.boundary().len(), 16);
        assert_eq!(ctx.weight_source(), WeightSource::Gwt);
    }

    #[test]
    fn context_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DecodingContext>();
    }

    #[test]
    fn forced_local_context_has_no_gwt() {
        let code = SurfaceCode::new(3).unwrap();
        let ctx = DecodingContext::for_memory_experiment_with(
            &code,
            NoiseModel::depolarizing(1e-3),
            WeightSource::Local,
        );
        assert!(ctx.try_gwt().is_none());
        assert_eq!(ctx.weight_source(), WeightSource::Local);
        assert_eq!(ctx.gwt_projected_bytes(), 16 * 16 * 13);
        assert_eq!(ctx.boundary().len(), 16);
    }

    #[test]
    #[should_panic(expected = "GWT-free")]
    fn gwt_accessor_panics_on_local_context() {
        let code = SurfaceCode::new(3).unwrap();
        let ctx = DecodingContext::for_memory_experiment_with(
            &code,
            NoiseModel::depolarizing(1e-3),
            WeightSource::Local,
        );
        let _ = ctx.gwt();
    }

    #[test]
    fn local_boundary_matches_gwt_diagonal() {
        let code = SurfaceCode::new(5).unwrap();
        let noise = NoiseModel::depolarizing(2e-3);
        let gwt_ctx = DecodingContext::for_memory_experiment_with(&code, noise, WeightSource::Gwt);
        let local_ctx =
            DecodingContext::for_memory_experiment_with(&code, noise, WeightSource::Local);
        let gwt = gwt_ctx.gwt();
        let bt = local_ctx.boundary();
        for i in 0..gwt.len() as u32 {
            assert_eq!(bt.weight(i).to_bits(), gwt.boundary_weight(i).to_bits());
            assert_eq!(bt.obs(i), gwt.boundary_obs(i));
            assert_eq!(bt.weight_q(i), gwt.boundary_weight_q(i));
        }
    }

    #[test]
    fn auto_budget_keeps_small_distances_on_the_gwt() {
        // The auto threshold must not change behavior for the distances
        // the rest of the suite exercises.
        for d in [3usize, 5] {
            let code = SurfaceCode::new(d).unwrap();
            let ctx = DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(1e-3));
            assert_eq!(ctx.weight_source(), WeightSource::Gwt, "d = {d}");
        }
    }
}
