//! Bundled decoding context: circuit, error model, graph, and weight table.

use crate::graph::MatchingGraph;
use crate::gwt::GlobalWeightTable;
use qec_circuit::{build_memory_z_circuit, Circuit, DetectorErrorModel, NoiseModel};
use surface_code::SurfaceCode;

/// Everything a decoder (and the experiment harness) needs for one
/// `(distance, rounds, noise)` configuration, computed once and shared.
///
/// Building the context performs the expensive one-time work: detector
/// error model extraction and the all-pairs Dijkstra behind the
/// [`GlobalWeightTable`]. The context is immutable afterwards and can be
/// shared across threads.
#[derive(Debug, Clone)]
pub struct DecodingContext {
    circuit: Circuit,
    dem: DetectorErrorModel,
    graph: MatchingGraph,
    gwt: GlobalWeightTable,
}

impl DecodingContext {
    /// Builds the context for a surface-code Z-memory experiment with
    /// `rounds = d`, the paper's standard configuration.
    pub fn for_memory_experiment(code: &SurfaceCode, noise: NoiseModel) -> DecodingContext {
        let circuit = build_memory_z_circuit(code, code.distance(), noise);
        DecodingContext::from_circuit(&circuit)
    }

    /// Builds the context from an arbitrary annotated circuit.
    pub fn from_circuit(circuit: &Circuit) -> DecodingContext {
        let dem = circuit.detector_error_model();
        let graph = MatchingGraph::build(circuit, &dem);
        let gwt = GlobalWeightTable::new(&graph);
        DecodingContext {
            circuit: circuit.clone(),
            dem,
            graph,
            gwt,
        }
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The extracted detector error model.
    pub fn dem(&self) -> &DetectorErrorModel {
        &self.dem
    }

    /// The sparse matching graph.
    pub fn graph(&self) -> &MatchingGraph {
        &self.graph
    }

    /// The Global Weight Table.
    pub fn gwt(&self) -> &GlobalWeightTable {
        &self.gwt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_context_has_consistent_sizes() {
        let code = SurfaceCode::new(3).unwrap();
        let ctx = DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(1e-3));
        assert_eq!(ctx.circuit().num_detectors(), 16);
        assert_eq!(ctx.dem().num_detectors(), 16);
        assert_eq!(ctx.graph().num_detectors(), 16);
        assert_eq!(ctx.gwt().len(), 16);
    }

    #[test]
    fn context_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DecodingContext>();
    }
}
