//! Graph-native primal-dual pair discovery for the deep tail: grow every
//! region a capped ball, collect meets where the balls co-settle, never
//! materialize a pair weight that matching can't use.
//!
//! [`stage_ondemand`](crate::LocalWeightProvider::stage_ondemand) already
//! certifies most pairs dominated without touching the graph, but every
//! *genuine* collision pair still costs a one-sided search: the region of
//! detector `i` must grow until it swallows detector `j`, a ball of
//! radius `d(i, j)` — and a dominated-but-unexcluded pair costs the full
//! bound radius. At d = 31 those balls pin ~1.8 M settles per shot — the
//! measured floor of the one-sided contract (EXPERIMENTS.md, "Why not
//! 10×").
//!
//! [`stage_graph_pd`](crate::LocalWeightProvider::stage_graph_pd) is the
//! Sparse Blossom move (Higgott & Gidney, arXiv:2303.15933) applied to
//! pair discovery: *both* endpoints of a pair grow toward each other, so
//! each pays a fraction of the distance — and in the 3-D space-time
//! lattice a fractional radius costs a cubed fraction of the volume. The
//! stage runs five passes over packed per-shot state:
//!
//! 1. **Envelope.** A k×k distance envelope `lb(i,j) ≤ d(i,j) ≤ ub(i,j)`
//!    from one pass over the ALT landmark arrays (`lb` from the best
//!    difference, `ub` from the best sum — the same arrays the on-demand
//!    exclusion reads, so it is free), with `ub` sharpened by a metric
//!    closure through the fired detectors themselves (sound because every
//!    `ub(i,m) + ub(m,j)` overestimates a real path).
//! 2. **Census.** Pairs whose coordinate or landmark `lb` clears the
//!    dominance bound `bound(i,j) = max(bᵢ + bⱼ, (qbᵢ + qbⱼ + 1)/scale)`
//!    are excluded outright; each survivor records its joint growth
//!    requirement `need(i,j) = min(bound, ub) + w_max`, where `w_max` is
//!    the largest internal edge weight.
//! 3. **Share passes.** The joint requirement is split between the two
//!    endpoint regions. Any split works — whenever the two radius caps
//!    sum to `need`, the first shortest-chain node inside the walked cap
//!    is settled by both balls (the split-edge argument below) — so the
//!    split is a pure cost knob, and a few fixed-point rounds of
//!    proportional sharing let regions that already grow far for one
//!    pair absorb their other pairs' shares for free. The last round
//!    assigns roles: the larger share becomes the *dense* (painted)
//!    side, the smaller the *walked* side, skewed further toward dense
//!    because region caps are shared across a region's pairs while the
//!    walk is paid per pair.
//! 4. **Growth.** One capped Dijkstra per region over the provider's
//!    stamped `NodeState` arrays, logging each ball as a contiguous
//!    `(dist, node, parity)` run. Frontier pushes beyond the cap are
//!    skipped — with positive weights nothing outside the cap re-enters
//!    it, so capped balls stay prefix-exact (the on-demand radius
//!    argument). The frontier is a Dial bucket queue with granularity
//!    strictly below the smallest edge weight: draining a bucket can
//!    never push back into it, so settle order is exact Dijkstra order
//!    at O(1) per queue operation instead of a binary-heap log.
//! 5. **Meet sweep.** Pairs arrive grouped by dense endpoint; each
//!    group paints its ball into an O(ℓ) epoch-stamped image once, then
//!    every pair walks its partner ball's bucket-ordered prefix (up to
//!    its own cutoff, with one granule of slack for within-bucket
//!    disorder) and probes the image for co-settled nodes, keeping the
//!    minimum witness `μ = d_dense(x) + d_walk(x)`.
//!
//! **Why the witnesses are exact.** For a pair with true distance
//! `D ≤ min(bound, ub)` and caps `c_dense + c_walk ≥ D + w_max`, take
//! the first node `y` on the shortest `i → j` chain with
//! `suffix(y) ≤ c_walk`. Its predecessor has `suffix > c_walk`, so
//! `prefix(y) < D - c_walk + w_max ≤ c_dense` — `y` is settled by both
//! capped balls, both distances are prefix-exact, and the witness sums
//! to exactly `D`. Any witness anywhere is `≥ D` by the triangle
//! inequality, so the sweep minimum is exactly `d(i, j)` for every pair
//! that matters; a pair whose balls never co-settle within its bound is
//! certified dominated — the staged oracle's settled/`INFINITY` split.
//!
//! The discovered block is *semantically* identical to the staged
//! oracle's (same settled-pair set, same dominance certificates) but not
//! *bit*-identical: a meet weight is the sum of two partial chains
//! rather than one source-rooted chain, so the f64 rounds differently in
//! the last ulp, and an equal-weight meet may surface a different
//! shortest chain (different observable parity) than the one-sided
//! relaxation order picks. [`DeepBackend::GraphPd`] is therefore an
//! explicitly opt-in backend, validated by per-shot optimality
//! certificates (equal total matching weight under the oracle's weights)
//! and a statistical LER gate rather than matching-for-matching equality
//! — see `tests/graphpd_vs_ondemand.rs`.
//!
//! All per-shot bookkeeping lives in a [`GraphPdScratch`] owned by the
//! worker's `DecodeScratch`: buffers grow once and are reused, so
//! steady-state discovery performs no allocation.
//!
//! [`DeepBackend::GraphPd`]: https://docs.rs/blossom-mwpm

/// Work counters for the graph-native primal-dual discovery engine,
/// threaded through the pipeline's counters so benches and smoke tests
/// can see the backend working (and assert the *other* deep backends
/// stayed idle — the dispatch drift guard).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphPdStats {
    /// Calls to
    /// [`stage_graph_pd`](crate::LocalWeightProvider::stage_graph_pd)
    /// (one per deep shot that reaches the backend).
    pub stages: u64,
    /// Stagings answered by the staged-block memo (identical detector
    /// list discovered again — replayed shots on served streams).
    pub memo_hits: u64,
    /// Growth regions seeded (fired detectors with at least one
    /// non-excluded pair).
    pub regions: u64,
    /// Region grow steps: nodes settled across all regions (the grown
    /// volume — the number the one-sided engine pays a multiple of).
    pub grows: u64,
    /// Adjacency entries scanned while growing (relaxations attempted).
    pub edge_events: u64,
    /// Region merges: pairs whose half-radius balls co-settled within
    /// the bound, i.e. pairs discovered with an exact weight.
    pub merges: u64,
    /// Regions grown to their cap and retired (every region retires —
    /// kept distinct from `regions` so a dispatch bug that seeds but
    /// never grows shows up as a counter mismatch).
    pub frozen: u64,
    /// Deep clusters handed to the blossom solver under graph-pd
    /// staging (the matching-side cost of what discovery found).
    pub blossoms: u64,
    /// Pairs certified dominated: the capped balls never co-settled
    /// within the pair's bound, so boundary matching provably wins in
    /// both weight domains.
    pub deadline_pruned: u64,
    /// Pairs excluded up front by a coordinate or landmark lower bound
    /// (never tracked at all).
    pub excluded: u64,
}

impl GraphPdStats {
    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &GraphPdStats) {
        self.stages += other.stages;
        self.memo_hits += other.memo_hits;
        self.regions += other.regions;
        self.grows += other.grows;
        self.edge_events += other.edge_events;
        self.merges += other.merges;
        self.frozen += other.frozen;
        self.blossoms += other.blossoms;
        self.deadline_pruned += other.deadline_pruned;
        self.excluded += other.excluded;
    }

    /// True when no graph-pd discovery ran (used by smoke asserts).
    pub fn is_idle(&self) -> bool {
        self.stages == 0
    }

    /// The work done since `baseline` was captured (saturating, so a
    /// counter reset between captures reads as zero rather than
    /// wrapping). The pipeline uses this to attribute a worker's
    /// cumulative counters to individual tiles.
    pub fn delta_since(&self, baseline: &GraphPdStats) -> GraphPdStats {
        GraphPdStats {
            stages: self.stages.saturating_sub(baseline.stages),
            memo_hits: self.memo_hits.saturating_sub(baseline.memo_hits),
            regions: self.regions.saturating_sub(baseline.regions),
            grows: self.grows.saturating_sub(baseline.grows),
            edge_events: self.edge_events.saturating_sub(baseline.edge_events),
            merges: self.merges.saturating_sub(baseline.merges),
            frozen: self.frozen.saturating_sub(baseline.frozen),
            blossoms: self.blossoms.saturating_sub(baseline.blossoms),
            deadline_pruned: self
                .deadline_pruned
                .saturating_sub(baseline.deadline_pruned),
            excluded: self.excluded.saturating_sub(baseline.excluded),
        }
    }
}

/// One tracked (non-excluded) pair of the current shot.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PairRec {
    /// Best co-settlement witness so far (`INFINITY` until the balls
    /// touch); exactly `d(i, j)` once the sweep completes, for every
    /// pair within its bound.
    pub(crate) mu: f64,
    /// Dominance bound `max(bᵢ + bⱼ, (qbᵢ + qbⱼ + 1)/scale)`.
    pub(crate) bound: f64,
    /// Walked-side share of the pair's joint growth requirement
    /// (inflated): the sweep walks only the partner ball's prefix up to
    /// it, because the split-edge witness is guaranteed to sit within
    /// this distance of the walked endpoint. During the share passes the
    /// field temporarily holds the whole requirement
    /// `min(bound, ub) + w_max`.
    pub(crate) cut: f64,
    /// Observable parity of the chain behind `mu`.
    pub(crate) parity: u32,
    /// Endpoint slots (`i < j`).
    pub(crate) i: u32,
    pub(crate) j: u32,
}

/// One settled node of a region's ball log: distance, node, and chain
/// parity in 16 bytes, so growth writes and sweep walks touch a single
/// stream.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BallEntry {
    /// Settled distance from the region source.
    pub(crate) dist: f64,
    /// The settled node.
    pub(crate) node: u32,
    /// Chain parity behind `dist`.
    pub(crate) par: u32,
}

/// One node of the sweep's dense ball image: settled distance, validity
/// stamp, and chain parity packed into 16 bytes so a probe costs one
/// cache line instead of three.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct DenseEntry {
    /// Settled distance from the imaged region's source.
    pub(crate) dist: f64,
    /// Image epoch this entry belongs to (stale entries are ignored).
    pub(crate) stamp: u32,
    /// Chain parity behind `dist`.
    pub(crate) par: u32,
}

/// Per-region growth state.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RegionRec {
    /// Radius cap: the largest share of a joint pair requirement
    /// `min(bound, ub) + w_max` charged to this region by the share
    /// passes. Frontier pushes beyond the cap are skipped — the same
    /// prefix-exactness argument as the on-demand radius skip, since
    /// with positive weights any path into the capped ball stays inside
    /// it.
    pub(crate) cap: f64,
    /// Tracked pairs charged to this region; zero-pair regions are
    /// never grown.
    pub(crate) pairs: u32,
}

/// Per-worker bookkeeping arena for
/// [`stage_graph_pd`](crate::LocalWeightProvider::stage_graph_pd): the
/// pair/region tables, the region-major ball log, the dense sweep image,
/// and the Dial queue. Owned by `DecodeScratch` so the buffers persist across
/// shots — grown once, reused forever, zero steady-state allocation.
#[derive(Debug, Clone, Default)]
pub struct GraphPdScratch {
    /// Tracked pairs of the current shot, grouped by first endpoint
    /// (census order) so the sweep paints each region's image once.
    pub(crate) pairs: Vec<PairRec>,
    /// Per-region growth state.
    pub(crate) regions: Vec<RegionRec>,
    /// Ball log, region-major: nodes settled by each region in growth
    /// order (contiguous per region, bucket-ordered — distances are
    /// nondecreasing up to one Dial granule of within-bucket disorder).
    pub(crate) ball: Vec<BallEntry>,
    /// Region r's ball occupies `ball_*[ball_head[r]..ball_head[r+1]]`.
    pub(crate) ball_head: Vec<u32>,
    /// k×k landmark lower bounds for the census (deflated, symmetric).
    pub(crate) lb: Vec<f64>,
    /// k×k distance upper bounds: landmark bounds sharpened by a
    /// metric-closure pass through the fired detectors themselves.
    pub(crate) ub: Vec<f64>,
    /// Dense ball image of the sweep's current region, O(ℓ) and
    /// L2-resident; an entry is valid where its stamp matches the
    /// current epoch (epoch-tagged so repainting is O(ball), not O(ℓ)).
    pub(crate) dense: Vec<DenseEntry>,
    /// Current image epoch.
    pub(crate) dense_epoch: u32,
    /// Dial (bucket) queue for the capped growths: bucket `b` holds
    /// frontier keys with distance in `[b·gran, (b+1)·gran)` where
    /// `gran` is strictly below the smallest edge weight, so draining a
    /// bucket can never push back into it and settle order is exact
    /// Dijkstra order at O(1) per operation.
    pub(crate) dial: Vec<Vec<u128>>,
    /// Row buffer for the metric-closure pass (the pivot row is copied
    /// out so the relaxation can scan it while rewriting other rows).
    pub(crate) closure_row: Vec<f64>,
    /// Work counters accumulated by this worker since construction (the
    /// pipeline harvests deltas per tile).
    pub stats: GraphPdStats,
}

impl GraphPdScratch {
    /// A fresh, empty arena.
    pub fn new() -> GraphPdScratch {
        GraphPdScratch::default()
    }

    /// Clears the bookkeeping (not the accumulated stats) without
    /// releasing capacity.
    pub fn clear(&mut self) {
        self.pairs.clear();
        self.regions.clear();
        self.ball.clear();
        self.ball_head.clear();
        self.lb.clear();
        self.ub.clear();
        self.dense.clear();
        self.dense_epoch = 0;
        self.dial.clear();
        self.closure_row.clear();
    }
}
