//! The decoder interface shared by every decoder in the workspace.

use crate::scratch::DecodeScratch;

/// The result of decoding one syndrome vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Prediction {
    /// Bitmask of logical observables the decoder believes were flipped.
    /// Applying the implied correction succeeds iff this equals the actual
    /// flip mask of the shot.
    pub observables: u32,
    /// Modeled hardware latency in decoder clock cycles (0 for software
    /// decoders and for trivially decoded syndromes).
    pub cycles: u64,
    /// True if the decoder could not decode this syndrome in real time —
    /// either it gave up (e.g. Astrea beyond Hamming weight 10) or it
    /// deferred to a software fallback (e.g. the Clique pre-decoder).
    pub deferred: bool,
}

impl Prediction {
    /// A trivial "no correction" prediction.
    pub fn identity() -> Prediction {
        Prediction::default()
    }

    /// Converts the modeled cycle count to nanoseconds at the given decoder
    /// clock frequency (the paper's FPGA designs run at 250 MHz).
    ///
    /// ```
    /// use decoding_graph::Prediction;
    /// let p = Prediction { observables: 0, cycles: 114, deferred: false };
    /// assert_eq!(p.latency_ns(250.0), 456.0); // Astrea's worst case (§5.4)
    /// ```
    pub fn latency_ns(&self, freq_mhz: f64) -> f64 {
        self.cycles as f64 * 1e3 / freq_mhz
    }
}

/// A syndrome decoder.
///
/// Decoders receive the sorted indices of the detectors that fired (the
/// nonzero bits of the syndrome vector) and return a [`Prediction`].
/// Decoders may keep internal scratch state between calls, hence `&mut
/// self`; one decoder instance must not be shared across threads while
/// decoding (create one per worker instead).
pub trait Decoder {
    /// Decodes one syndrome vector given the fired detectors, sorted
    /// ascending.
    fn decode(&mut self, detectors: &[u32]) -> Prediction;

    /// Decodes one syndrome vector reusing caller-provided scratch
    /// buffers — the batched hot path.
    ///
    /// Must return exactly what [`Decoder::decode`] returns for the same
    /// input; the scratch arena only changes where working memory comes
    /// from. The default implementation ignores the arena and delegates
    /// to `decode`, so decoders whose working set is trivial need not
    /// override it.
    fn decode_with_scratch(
        &mut self,
        detectors: &[u32],
        scratch: &mut DecodeScratch,
    ) -> Prediction {
        let _ = scratch;
        self.decode(detectors)
    }

    /// Decodes a batch of same-weight syndromes: `detectors` holds
    /// `out.len()` concatenated sorted detector lists of `k` entries
    /// each, and slot `i` of `out` receives the prediction for list `i`.
    ///
    /// This is the tile pipeline's closed-form batching hook: grouping a
    /// tile's equal-weight shots lets a decoder stage its weight-table
    /// gathers contiguously instead of round-tripping through
    /// [`Decoder::decode_with_scratch`] per shot. Every prediction must
    /// equal what `decode_with_scratch` returns for the same list — the
    /// default implementation simply loops it, so decoders without a
    /// batched path inherit bit-identical behaviour for free.
    ///
    /// # Panics
    ///
    /// Panics if `detectors.len() != k * out.len()`.
    fn decode_same_weight_batch(
        &mut self,
        k: usize,
        detectors: &[u32],
        out: &mut [Prediction],
        scratch: &mut DecodeScratch,
    ) {
        assert_eq!(
            detectors.len(),
            k * out.len(),
            "batch detector buffer does not hold out.len() lists of {k}"
        );
        if k == 0 {
            for slot in out.iter_mut() {
                *slot = self.decode_with_scratch(&[], scratch);
            }
            return;
        }
        for (list, slot) in detectors.chunks_exact(k).zip(out.iter_mut()) {
            *slot = self.decode_with_scratch(list, scratch);
        }
    }

    /// A short human-readable name ("MWPM", "Astrea", …) used in reports.
    fn name(&self) -> &'static str;

    /// Cumulative work counters of the decoder's GWT-free weight
    /// provider, when it has one. `None` for decoders that read a
    /// materialized weight table (or no table at all); the pipeline uses
    /// this to surface local-staging activity through its tile counters.
    fn local_weight_stats(&self) -> Option<crate::LocalWeightStats> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_conversion_at_250mhz() {
        let p = Prediction {
            observables: 0,
            cycles: 1,
            deferred: false,
        };
        assert_eq!(p.latency_ns(250.0), 4.0);
    }

    #[test]
    fn identity_prediction_is_empty() {
        let p = Prediction::identity();
        assert_eq!(p.observables, 0);
        assert_eq!(p.cycles, 0);
        assert!(!p.deferred);
    }
}
