//! The sparse matching graph derived from a detector error model.

use qec_circuit::{Circuit, DetectorCoord, DetectorErrorModel, ErrorMechanism};
use std::collections::HashMap;

/// Merged-edge accumulator keyed by detector pair (`u32::MAX` = boundary):
/// total probability plus per-observable-mask probability votes.
type MergedEdges = HashMap<(u32, u32), (f64, HashMap<u32, f64>)>;

/// Minimum probability an edge can carry; prevents infinite weights for
/// pathological inputs.
const MIN_EDGE_PROBABILITY: f64 = 1e-30;

/// How an error manifests in the space-time decoding graph (paper §4.1,
/// Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// A data-qubit error: both detectors in the same round (Figure 5a).
    Space,
    /// A measurement/reset error: the same stabilizer in two consecutive
    /// rounds (Figure 5b).
    Time,
    /// A CNOT (hook) error propagating in both space and time
    /// (Figure 5c).
    SpaceTime,
    /// An error chain terminating on the lattice boundary.
    Boundary,
}

impl std::fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EdgeKind::Space => "space",
            EdgeKind::Time => "time",
            EdgeKind::SpaceTime => "space-time",
            EdgeKind::Boundary => "boundary",
        };
        f.write_str(s)
    }
}

/// One weighted edge of a [`MatchingGraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// First endpoint (a detector index).
    pub u: u32,
    /// Second endpoint, or `None` for a boundary edge.
    pub v: Option<u32>,
    /// Total probability that some error flips exactly this detector pair.
    pub probability: f64,
    /// Edge weight, `−log₁₀(probability)`, clamped to be non-negative.
    pub weight: f64,
    /// Logical observables flipped by the underlying error.
    pub observables: u32,
}

impl Edge {
    fn key(&self) -> (u32, u32) {
        match self.v {
            Some(v) => (self.u.min(v), self.u.max(v)),
            None => (self.u, u32::MAX),
        }
    }
}

/// The sparse detector graph used for matching-based decoding.
///
/// Nodes are detector indices `0..num_detectors`; each edge corresponds to
/// an elementary error mechanism (or a decomposed component of a
/// multi-detector mechanism). A boundary edge (`v == None`) represents an
/// error flipping a single detector, i.e. an error chain terminating on the
/// lattice boundary.
#[derive(Debug, Clone)]
pub struct MatchingGraph {
    num_detectors: usize,
    num_observables: usize,
    edges: Vec<Edge>,
    /// Adjacency: for each detector, indices into `edges`.
    adjacency: Vec<Vec<u32>>,
    coords: Vec<DetectorCoord>,
    /// Mechanisms whose symptom sets required decomposition into edges.
    decomposed_mechanisms: usize,
}

impl MatchingGraph {
    /// Builds the matching graph for a circuit by extracting its detector
    /// error model and decomposing every mechanism into 1- and 2-detector
    /// edges.
    pub fn from_circuit(circuit: &Circuit) -> MatchingGraph {
        let dem = circuit.detector_error_model();
        MatchingGraph::build(circuit, &dem)
    }

    /// Builds the matching graph from a circuit and its (already extracted)
    /// detector error model.
    ///
    /// Mechanisms flipping one or two detectors map directly to edges.
    /// Mechanisms flipping three or four detectors (correlated two-qubit
    /// errors straddling two space-time edges) are decomposed into
    /// components that already exist as edges, preferring two-detector
    /// splits, falling back to coordinate-proximity pairing — the same
    /// strategy Stim's `decompose_errors` uses. Parallel edges merge with
    /// XOR-combined probability; when parallel edges disagree on the
    /// observable flip (possible only for short boundary-to-boundary chains
    /// at small distance) the higher-probability interpretation wins.
    ///
    /// # Panics
    ///
    /// Panics if the model contains an undetectable logical mechanism
    /// (these indicate a broken circuit, not a decodable code).
    pub fn build(circuit: &Circuit, dem: &DetectorErrorModel) -> MatchingGraph {
        assert!(
            dem.undetectable_logicals().is_empty(),
            "detector error model contains undetectable logical errors"
        );
        let coords: Vec<DetectorCoord> = circuit.detectors().iter().map(|d| d.coord).collect();

        // Pass 1: direct edges from 1- and 2-detector mechanisms.
        let mut merged: MergedEdges = HashMap::new();
        fn add(merged: &mut MergedEdges, u: u32, v: Option<u32>, p: f64, obs: u32) {
            let key = match v {
                Some(v) => (u.min(v), u.max(v)),
                None => (u, u32::MAX),
            };
            let slot = merged.entry(key).or_insert((0.0, HashMap::new()));
            slot.0 = slot.0 + p - 2.0 * slot.0 * p;
            *slot.1.entry(obs).or_insert(0.0) += p;
        }

        let mut deferred: Vec<&ErrorMechanism> = Vec::new();
        for m in dem.mechanisms() {
            match m.detectors.len() {
                0 => {} // no symptoms, no observable: ignorable
                1 => add(
                    &mut merged,
                    m.detectors[0],
                    None,
                    m.probability,
                    m.observables,
                ),
                2 => add(
                    &mut merged,
                    m.detectors[0],
                    Some(m.detectors[1]),
                    m.probability,
                    m.observables,
                ),
                _ => deferred.push(m),
            }
        }

        // Pass 2: decompose larger mechanisms using the edges discovered in
        // pass 1.
        let mut decomposed = 0usize;
        for m in &deferred {
            decomposed += 1;
            let parts = decompose(&m.detectors, m.observables, &merged, &coords);
            for (u, v, obs) in parts {
                add(&mut merged, u, v, m.probability, obs);
            }
        }

        let mut edges: Vec<Edge> = merged
            .into_iter()
            .map(|((a, b), (p, obs_votes))| {
                let p = p.clamp(MIN_EDGE_PROBABILITY, 1.0 - 1e-15);
                // Majority (by probability mass) observable interpretation.
                let observables = obs_votes
                    .into_iter()
                    .max_by(|x, y| x.1.total_cmp(&y.1))
                    .map(|(obs, _)| obs)
                    .unwrap_or(0);
                Edge {
                    u: a,
                    v: (b != u32::MAX).then_some(b),
                    probability: p,
                    weight: (-p.log10()).max(0.0),
                    observables,
                }
            })
            .collect();
        edges.sort_by_key(Edge::key);

        let mut adjacency = vec![Vec::new(); dem.num_detectors()];
        for (i, e) in edges.iter().enumerate() {
            adjacency[e.u as usize].push(i as u32);
            if let Some(v) = e.v {
                adjacency[v as usize].push(i as u32);
            }
        }

        MatchingGraph {
            num_detectors: dem.num_detectors(),
            num_observables: dem.num_observables(),
            edges,
            adjacency,
            coords,
            decomposed_mechanisms: decomposed,
        }
    }

    /// Number of detector nodes.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Number of logical observables.
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// All edges, sorted by endpoints.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edge indices incident to a detector (including its boundary edge, if
    /// any).
    pub fn incident_edges(&self, detector: u32) -> &[u32] {
        &self.adjacency[detector as usize]
    }

    /// The space-time coordinate of a detector.
    pub fn coord(&self, detector: u32) -> DetectorCoord {
        self.coords[detector as usize]
    }

    /// Internal neighbors of a detector with their connecting edge, in
    /// adjacency order. Boundary edges are skipped (see
    /// [`Self::boundary_edge`]).
    pub fn neighbors(&self, detector: u32) -> impl Iterator<Item = (u32, &Edge)> + '_ {
        self.adjacency[detector as usize]
            .iter()
            .filter_map(move |&i| {
                let e = &self.edges[i as usize];
                let v = e.v?;
                Some((if e.u == detector { v } else { e.u }, e))
            })
    }

    /// All boundary edges (errors flipping a single detector), in
    /// endpoint order.
    pub fn boundary_edges(&self) -> impl Iterator<Item = &Edge> + '_ {
        self.edges.iter().filter(|e| e.v.is_none())
    }

    /// How many mechanisms needed decomposition into multiple edges.
    pub fn decomposed_mechanisms(&self) -> usize {
        self.decomposed_mechanisms
    }

    /// The boundary edge of a detector, if it has one.
    pub fn boundary_edge(&self, detector: u32) -> Option<&Edge> {
        self.adjacency[detector as usize]
            .iter()
            .map(|&i| &self.edges[i as usize])
            .find(|e| e.v.is_none() && e.u == detector)
    }

    /// Classifies an edge as a space, time, space-time, or boundary event
    /// (paper §4.1) from its endpoints' space-time coordinates.
    pub fn edge_kind(&self, edge: &Edge) -> EdgeKind {
        let Some(v) = edge.v else {
            return EdgeKind::Boundary;
        };
        let (cu, cv) = (self.coord(edge.u), self.coord(v));
        let same_place = cu.row == cv.row && cu.col == cv.col;
        let same_round = cu.round == cv.round;
        match (same_place, same_round) {
            (true, false) => EdgeKind::Time,
            (false, true) => EdgeKind::Space,
            _ => EdgeKind::SpaceTime,
        }
    }

    /// Total error-probability mass per edge kind — how much of the noise
    /// manifests as each of §4.1's event classes.
    pub fn probability_by_kind(&self) -> Vec<(EdgeKind, f64, usize)> {
        use std::collections::HashMap;
        let mut acc: HashMap<EdgeKind, (f64, usize)> = HashMap::new();
        for e in &self.edges {
            let slot = acc.entry(self.edge_kind(e)).or_insert((0.0, 0));
            slot.0 += e.probability;
            slot.1 += 1;
        }
        let mut out: Vec<(EdgeKind, f64, usize)> =
            acc.into_iter().map(|(k, (p, n))| (k, p, n)).collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }
}

/// Splits a 3- or 4-detector symptom set into 1- and 2-detector components.
///
/// Preference order: splits whose every component already exists as an edge
/// (pass-1 edges), then coordinate-proximity pairing. The observable mask is
/// assigned to the first component of the split; the rest carry no
/// observable (the decomposition is an approximation — the correlated error
/// is modeled as its components triggering together).
fn decompose(
    dets: &[u32],
    obs: u32,
    existing: &MergedEdges,
    coords: &[DetectorCoord],
) -> Vec<(u32, Option<u32>, u32)> {
    let has_pair = |a: u32, b: u32| existing.contains_key(&(a.min(b), a.max(b)));
    let has_boundary = |a: u32| existing.contains_key(&(a, u32::MAX));
    let dist = |a: u32, b: u32| {
        let (ca, cb) = (coords[a as usize], coords[b as usize]);
        ca.row.abs_diff(cb.row) + ca.col.abs_diff(cb.col) + 2 * ca.round.abs_diff(cb.round)
    };

    match dets {
        [a, b, c] => {
            // Try (pair, boundary) splits in all three arrangements, best
            // (existing-edge) first.
            let options = [(*a, *b, *c), (*a, *c, *b), (*b, *c, *a)];
            for (x, y, z) in options {
                if has_pair(x, y) && has_boundary(z) {
                    return vec![(x, Some(y), obs), (z, None, 0)];
                }
            }
            // Fallback: pair the two closest detectors.
            let best = options
                .into_iter()
                .min_by_key(|&(x, y, _)| dist(x, y))
                .expect("three options");
            vec![(best.0, Some(best.1), obs), (best.2, None, 0)]
        }
        [a, b, c, d] => {
            let pairings = [
                ((*a, *b), (*c, *d)),
                ((*a, *c), (*b, *d)),
                ((*a, *d), (*b, *c)),
            ];
            for ((x, y), (z, w)) in pairings {
                if has_pair(x, y) && has_pair(z, w) {
                    return vec![(x, Some(y), obs), (z, Some(w), 0)];
                }
            }
            let ((x, y), (z, w)) = pairings
                .into_iter()
                .min_by_key(|&((x, y), (z, w))| dist(x, y) + dist(z, w))
                .expect("three pairings");
            vec![(x, Some(y), obs), (z, Some(w), 0)]
        }
        _ => {
            // Very rare at circuit-level depolarizing noise; greedily peel
            // nearest pairs.
            let mut rest: Vec<u32> = dets.to_vec();
            let mut out = Vec::new();
            let mut first = true;
            while rest.len() >= 2 {
                let a = rest[0];
                let (bi, _) = rest
                    .iter()
                    .enumerate()
                    .skip(1)
                    .min_by_key(|(_, &b)| dist(a, b))
                    .expect("nonempty rest");
                let b = rest.remove(bi);
                rest.remove(0);
                out.push((a, Some(b), if first { obs } else { 0 }));
                first = false;
            }
            if let Some(&last) = rest.first() {
                out.push((last, None, if first { obs } else { 0 }));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec_circuit::{build_memory_z_circuit, NoiseModel};
    use surface_code::SurfaceCode;

    fn graph(d: usize, p: f64) -> MatchingGraph {
        let code = SurfaceCode::new(d).unwrap();
        let circuit = build_memory_z_circuit(&code, d, NoiseModel::depolarizing(p));
        MatchingGraph::from_circuit(&circuit)
    }

    #[test]
    fn every_detector_has_incident_edges() {
        let g = graph(3, 1e-3);
        for det in 0..g.num_detectors() as u32 {
            assert!(
                !g.incident_edges(det).is_empty(),
                "detector {det} is isolated"
            );
        }
    }

    #[test]
    fn edges_are_deduplicated() {
        let g = graph(3, 1e-3);
        let mut keys: Vec<(u32, u32)> = g.edges().iter().map(Edge::key).collect();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before, "duplicate edges present");
    }

    #[test]
    fn weights_are_positive_and_match_probability() {
        let g = graph(5, 1e-3);
        for e in g.edges() {
            assert!(e.probability > 0.0 && e.probability < 0.5);
            assert!((e.weight - (-e.probability.log10())).abs() < 1e-9);
            assert!(e.weight > 0.0);
        }
    }

    #[test]
    fn boundary_edges_exist_only_near_lattice_boundary() {
        // Boundary edges arise from errors flipping a single detector, which
        // happens for data qubits adjacent to the left/right (X-type)
        // boundaries. There must be some, but not on every detector.
        let g = graph(5, 1e-3);
        let with_boundary = (0..g.num_detectors() as u32)
            .filter(|&d| g.boundary_edge(d).is_some())
            .count();
        assert!(with_boundary > 0);
        assert!(with_boundary < g.num_detectors());
    }

    #[test]
    fn neighbors_are_symmetric_and_internal() {
        let g = graph(3, 1e-3);
        for det in 0..g.num_detectors() as u32 {
            for (other, e) in g.neighbors(det) {
                assert_ne!(other, det);
                assert!(e.v.is_some());
                assert!(
                    g.neighbors(other).any(|(back, _)| back == det),
                    "neighbor relation not symmetric for ({det}, {other})"
                );
            }
        }
    }

    #[test]
    fn boundary_edges_iterator_agrees_with_per_detector_lookup() {
        let g = graph(5, 1e-3);
        let via_iter = g.boundary_edges().count();
        let via_lookup = (0..g.num_detectors() as u32)
            .filter(|&d| g.boundary_edge(d).is_some())
            .count();
        assert_eq!(via_iter, via_lookup);
        assert!(via_iter > 0);
        for e in g.boundary_edges() {
            assert!(e.v.is_none());
        }
    }

    #[test]
    fn some_edges_cross_the_logical() {
        let g = graph(3, 1e-3);
        assert!(
            g.edges().iter().any(|e| e.observables != 0),
            "no edge flips the observable — corrections could never flip logicals"
        );
    }

    #[test]
    fn z_restricted_model_needs_no_decomposition() {
        // Restricting detectors to one stabilizer basis makes every
        // circuit-level depolarizing mechanism fold to at most two symptoms,
        // so the decomposition fallback is never exercised by the memory
        // circuits (it is covered by the synthetic tests below).
        let g = graph(5, 1e-3);
        assert_eq!(g.decomposed_mechanisms(), 0);
    }

    #[test]
    fn graph_scales_with_distance() {
        let g3 = graph(3, 1e-3);
        let g5 = graph(5, 1e-3);
        assert_eq!(g3.num_detectors(), 16);
        assert_eq!(g5.num_detectors(), 72);
        assert!(g5.edges().len() > g3.edges().len());
    }

    #[test]
    fn edge_kinds_cover_all_four_classes() {
        // Circuit-level noise on a multi-round memory experiment produces
        // all of §4.1's event classes.
        let g = graph(5, 1e-3);
        let kinds = g.probability_by_kind();
        let present: Vec<EdgeKind> = kinds.iter().map(|&(k, _, _)| k).collect();
        for expected in [
            EdgeKind::Space,
            EdgeKind::Time,
            EdgeKind::SpaceTime,
            EdgeKind::Boundary,
        ] {
            assert!(present.contains(&expected), "missing {expected} edges");
        }
    }

    #[test]
    fn time_edges_connect_same_stabilizer_across_rounds() {
        let g = graph(3, 1e-3);
        for e in g.edges() {
            if g.edge_kind(e) == EdgeKind::Time {
                let v = e.v.expect("time edges are internal");
                let (cu, cv) = (g.coord(e.u), g.coord(v));
                assert_eq!((cu.row, cu.col), (cv.row, cv.col));
                assert_ne!(cu.round, cv.round);
            }
        }
    }

    #[test]
    fn phenomenological_noise_has_no_space_time_edges() {
        // With gate noise disabled, only data errors (space) and
        // measurement errors (time) remain — no hooks.
        use qec_circuit::NoiseModel;
        let code = SurfaceCode::new(3).unwrap();
        let noise = NoiseModel::depolarizing(1e-3).with_gate(0.0);
        let circuit = build_memory_z_circuit(&code, 3, noise);
        let g = MatchingGraph::from_circuit(&circuit);
        for e in g.edges() {
            assert_ne!(
                g.edge_kind(e),
                EdgeKind::SpaceTime,
                "hook edge without gate noise: {e:?}"
            );
        }
    }

    #[test]
    fn decompose_prefers_existing_edges() {
        let mut existing = HashMap::new();
        existing.insert((0u32, 1u32), (0.1, HashMap::new()));
        existing.insert((2u32, u32::MAX), (0.1, HashMap::new()));
        let coords = vec![DetectorCoord::default(); 3];
        let parts = decompose(&[0, 1, 2], 1, &existing, &coords);
        assert_eq!(parts, vec![(0, Some(1), 1), (2, None, 0)]);
    }

    #[test]
    fn decompose_falls_back_to_proximity() {
        let existing = HashMap::new();
        let coords = vec![
            DetectorCoord {
                row: 0,
                col: 0,
                round: 0,
            },
            DetectorCoord {
                row: 0,
                col: 2,
                round: 0,
            },
            DetectorCoord {
                row: 8,
                col: 8,
                round: 3,
            },
            DetectorCoord {
                row: 8,
                col: 10,
                round: 3,
            },
        ];
        let parts = decompose(&[0, 1, 2, 3], 0, &existing, &coords);
        assert_eq!(parts.len(), 2);
        // Closest pairing is (0,1) and (2,3).
        assert!(parts.contains(&(0, Some(1), 0)));
        assert!(parts.contains(&(2, Some(3), 0)));
    }
}
