//! GWT-free weight provision: the boundary table and the staged local
//! weight provider behind [`WeightSource::Local`].
//!
//! The Global Weight Table stores all `ℓ²` pair weights up front, which
//! caps the reachable distance: 13 bytes per entry (quantized + exact +
//! observables) is ~42 MB at d = 15 and ~3 GB at d = 31. The local
//! provider keeps only `O(ℓ)` state — per-detector boundary distances
//! plus stamped Dijkstra scratch — and computes the pair weights a shot
//! actually needs on demand, by truncated per-source Dijkstra over the
//! sparse matching graph (the Sparse Blossom insight: matching never
//! looks past a small local ball).
//!
//! **Bit-identity contract.** Every staged entry is either *bit-identical*
//! to the corresponding Global Weight Table entry, or `f64::INFINITY` for
//! a pair whose true weight provably exceeds every threshold a decoder
//! compares it against (see [`LocalWeightProvider::stage`]). The decode
//! paths in `blossom-mwpm` only ever compare pair weights against
//! boundary-sum alternatives, so a dominated `INFINITY` and the true
//! (large) value take the same branch everywhere — predictions and
//! matchings are bit-identical to the GWT path, which CI enforces with a
//! differential suite at d ∈ {3, 5, 7}.

use crate::graph::MatchingGraph;
use crate::graph_pd::{BallEntry, DenseEntry, GraphPdScratch, PairRec, RegionRec};
use crate::gwt::{quantize, OrdF64, DEFAULT_WEIGHT_SCALE};
use crate::ondemand::OndemandScratch;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Number of ALT landmarks a [`LocalWeightProvider`] precomputes
/// (farthest-point sampled; clamped to the detector count on tiny
/// graphs). 16 keeps the per-pair filter at a few dozen subtractions and
/// the table under 2 MB even at d = 31 — still `O(ℓ)` per worker.
const NUM_LANDMARKS: usize = 16;

/// Largest detector count for which graph-pd staging sharpens its
/// landmark upper bounds with a k³ metric closure through the fired
/// detectors. Beyond this the closure would rival the growth it saves,
/// so deeper shots fall back to raw landmark bounds.
const GRAPH_PD_CLOSURE_LIMIT: usize = 384;

/// Packed per-node Dijkstra state: distance, stamp, and path parity in
/// one 16-byte record, so a relaxation's stamp check, distance compare,
/// and parity read all hit a single cache line instead of three arrays.
#[derive(Debug, Clone, Copy)]
struct NodeState {
    dist: f64,
    stamp: u32,
    parity: u32,
}

/// One CSR adjacency entry: an internal edge as seen from one endpoint,
/// with its weight and observable mask inlined. Packing these (in
/// `incident_edges` order, boundary edges dropped) turns the hot
/// relaxation scan into one sequential read instead of the
/// `incident_edges → edges()[ei]` double indirection, while visiting the
/// exact same edges in the exact same order — relaxation order, and
/// hence every settled bit, is unchanged.
#[derive(Debug, Clone, Copy)]
struct AdjEntry {
    nbr: u32,
    obs: u32,
    weight: f64,
}

/// Order-isomorphic heap key: distances are nonnegative and finite, so
/// the IEEE bit pattern orders exactly as the value and
/// `(bits(d) << 32) | node` compares as the lexicographic pair
/// `(d, node)` — one integer compare per heap operation, same pop order.
#[inline]
fn heap_key(d: f64, node: u32) -> u128 {
    ((d.to_bits() as u128) << 32) | node as u128
}

#[inline]
fn heap_key_dist(key: u128) -> f64 {
    f64::from_bits((key >> 32) as u64)
}

/// Which engine produced the currently staged block. The flavors fill
/// different cell subsets (full rows, upper-triangle on demand, met
/// pairs only), so a memo of one kind must never serve another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StageFlavor {
    /// Full per-row staging ([`LocalWeightProvider::stage`]).
    Full,
    /// On-demand upper-triangle staging
    /// ([`LocalWeightProvider::stage_ondemand`]).
    Ondemand,
    /// Graph-native primal-dual discovery
    /// ([`LocalWeightProvider::stage_graph_pd`]).
    GraphPd,
}

/// Which weight backend a [`DecodingContext`](crate::DecodingContext)
/// materializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightSource {
    /// Build the Global Weight Table only while its projected footprint
    /// fits [`GWT_AUTO_BUDGET_BYTES`](crate::GWT_AUTO_BUDGET_BYTES);
    /// beyond that, go GWT-free. This is the default.
    Auto,
    /// Always materialize the Global Weight Table (the paper's §5.1
    /// hardware structure).
    Gwt,
    /// Never materialize the table: decoders draw pair weights from a
    /// [`LocalWeightProvider`] on demand.
    Local,
}

/// Per-detector boundary distances: the cheapest error chain from each
/// detector to the lattice boundary, with its observable parity and the
/// 8-bit quantized view. Syndrome-independent, `O(ℓ)` memory — this is
/// the only precomputed table the GWT-free path keeps.
///
/// Computed by the same multi-source Dijkstra (seeded at every boundary
/// edge) that fills the Global Weight Table's diagonal, so the values are
/// bit-identical to `gwt.boundary_weight(i)` — the GWT builder itself
/// consumes a `BoundaryTable` for its diagonal.
#[derive(Debug, Clone)]
pub struct BoundaryTable {
    weight: Vec<f64>,
    obs: Vec<u32>,
    quantized: Vec<u8>,
    scale: f64,
}

impl BoundaryTable {
    /// Builds the table with the default fixed-point scale.
    pub fn new(graph: &MatchingGraph) -> BoundaryTable {
        BoundaryTable::with_scale(graph, DEFAULT_WEIGHT_SCALE)
    }

    /// Builds the table with a custom fixed-point scale (subunits per
    /// unit weight).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    pub fn with_scale(graph: &MatchingGraph, scale: f64) -> BoundaryTable {
        assert!(scale > 0.0 && scale.is_finite(), "invalid scale {scale}");
        let n = graph.num_detectors();
        let mut weight = vec![f64::INFINITY; n];
        let mut obs = vec![0u32; n];
        let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
        for det in 0..n as u32 {
            if let Some(be) = graph.boundary_edge(det) {
                if be.weight < weight[det as usize] {
                    weight[det as usize] = be.weight;
                    obs[det as usize] = be.observables;
                    heap.push(Reverse((OrdF64(be.weight), det)));
                }
            }
        }
        while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
            if d > weight[u as usize] {
                continue;
            }
            for &ei in graph.incident_edges(u) {
                let e = &graph.edges()[ei as usize];
                let Some(v) = e.v else { continue };
                let w = if e.u == u { v } else { e.u };
                let nd = d + e.weight;
                if nd < weight[w as usize] {
                    weight[w as usize] = nd;
                    obs[w as usize] = obs[u as usize] ^ e.observables;
                    heap.push(Reverse((OrdF64(nd), w)));
                }
            }
        }
        let quantized = weight.iter().map(|&w| quantize(w, scale)).collect();
        BoundaryTable {
            weight,
            obs,
            quantized,
            scale,
        }
    }

    /// Number of detectors.
    pub fn len(&self) -> usize {
        self.weight.len()
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.weight.is_empty()
    }

    /// The fixed-point scale (subunits per unit weight).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Exact boundary weight of detector `i` in `−log₁₀ P` units.
    #[inline]
    pub fn weight(&self, i: u32) -> f64 {
        self.weight[i as usize]
    }

    /// Observable-parity mask of the cheapest boundary chain of `i`.
    #[inline]
    pub fn obs(&self, i: u32) -> u32 {
        self.obs[i as usize]
    }

    /// Quantized boundary weight of detector `i`.
    #[inline]
    pub fn weight_q(&self, i: u32) -> u8 {
        self.quantized[i as usize]
    }
}

/// Work counters for a [`LocalWeightProvider`] — how much graph the
/// truncated searches actually touch, and how often the staged-block memo
/// short-circuits a restage. Exposed so benches and smoke tests can
/// assert the local path is non-idle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalWeightStats {
    /// Calls to [`LocalWeightProvider::stage`].
    pub stages: u64,
    /// Stages answered by the already-staged block (identical detector
    /// list — the repeated singles/pairs of the screen cache, and
    /// replayed shots on served streams).
    pub memo_hits: u64,
    /// Per-source truncated Dijkstra expansions actually run.
    pub expansions: u64,
    /// Nodes settled (popped final) across all expansions.
    pub settled: u64,
    /// Pair targets skipped outright by the coordinate lower bound —
    /// provably dominated by boundary matching, never searched for.
    pub excluded_targets: u64,
}

impl LocalWeightStats {
    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &LocalWeightStats) {
        self.stages += other.stages;
        self.memo_hits += other.memo_hits;
        self.expansions += other.expansions;
        self.settled += other.settled;
        self.excluded_targets += other.excluded_targets;
    }

    /// True when no staging ran (used by smoke asserts).
    pub fn is_idle(&self) -> bool {
        self.stages == 0
    }

    /// The work done since `baseline` was captured (saturating, so a
    /// counter reset between captures reads as zero rather than
    /// wrapping). The pipeline uses this to attribute a worker's
    /// cumulative counters to individual tiles.
    pub fn delta_since(&self, baseline: &LocalWeightStats) -> LocalWeightStats {
        LocalWeightStats {
            stages: self.stages.saturating_sub(baseline.stages),
            memo_hits: self.memo_hits.saturating_sub(baseline.memo_hits),
            expansions: self.expansions.saturating_sub(baseline.expansions),
            settled: self.settled.saturating_sub(baseline.settled),
            excluded_targets: self
                .excluded_targets
                .saturating_sub(baseline.excluded_targets),
        }
    }
}

/// On-demand staged pair weights over the sparse matching graph — the
/// GWT-free backend decoders use under [`WeightSource::Local`].
///
/// [`stage`](Self::stage) runs one truncated Dijkstra per fired detector
/// and records, for every pair of the shot, either the exact
/// shortest-path weight (bit-identical to the Global Weight Table entry)
/// or `INFINITY` when the pair is provably dominated. All scratch is
/// stamped and reused: zero steady-state allocations once warm. One
/// provider lives inside each per-worker decoder.
#[derive(Debug, Clone)]
pub struct LocalWeightProvider<'a> {
    graph: &'a MatchingGraph,
    boundary: &'a BoundaryTable,
    /// Minimum edge weight per unit of Chebyshev lattice displacement
    /// (deflated by 1 − 1e-9 to stay a valid bound under f64 rounding);
    /// zero disables the spatial lower bound.
    space_cost: f64,
    /// Minimum edge weight per unit of round displacement, deflated
    /// likewise; zero disables the temporal lower bound.
    time_cost: f64,
    /// ALT landmark distances, node-major: `land[v * num_land + l]` is
    /// the exact internal-graph Dijkstra distance from landmark `l` to
    /// detector `v`. By the triangle inequality
    /// `d(i, j) ≥ |d(l, i) − d(l, j)|` for every landmark, which (after
    /// the same 1e-9 deflation the coordinate bound uses) lower-bounds
    /// any pair distance in O(L) — no graph search. Syndrome-independent
    /// `O(L·ℓ)` memory, so the GWT-free footprint story is unchanged.
    land: Vec<f64>,
    num_land: usize,
    // Stamped Dijkstra state over the whole graph (O(ℓ), reused).
    node: Vec<NodeState>,
    epoch: u32,
    heap: BinaryHeap<Reverse<u128>>,
    // CSR adjacency over internal edges, `incident_edges` order.
    adj_head: Vec<u32>,
    adj: Vec<AdjEntry>,
    /// Largest internal edge weight — the split-edge slack graph-pd
    /// radius caps and witness cutoffs carry so via-node meet witnesses
    /// always land inside the capped balls.
    w_max: f64,
    /// Dial-queue granularity: strictly below the smallest internal
    /// edge weight, so one relaxation always advances at least one
    /// bucket even under floating-point rounding — the invariant that
    /// makes bucket-order settling exact Dijkstra order.
    w_gran: f64,
    // The staged k×k block for the current detector list.
    dets: Vec<u32>,
    slot: Vec<u32>,
    slot_stamp: Vec<u32>,
    slot_epoch: u32,
    weights: Vec<f64>,
    obs: Vec<u32>,
    /// Per-target settle bound of the current expansion (NaN = excluded).
    bound: Vec<f64>,
    staged: bool,
    /// Which engine produced the staged block (see [`StageFlavor`]).
    flavor: StageFlavor,
    stats: LocalWeightStats,
}

impl<'a> LocalWeightProvider<'a> {
    /// Creates a provider over a matching graph and its boundary table.
    ///
    /// # Panics
    ///
    /// Panics if the boundary table was built for a different number of
    /// detectors.
    pub fn new(graph: &'a MatchingGraph, boundary: &'a BoundaryTable) -> LocalWeightProvider<'a> {
        let n = graph.num_detectors();
        assert_eq!(
            boundary.len(),
            n,
            "boundary table size does not match the graph"
        );
        // Lower-bound slopes: every internal edge moving r lattice units
        // (Chebyshev) costs at least `space_cost·r`, every edge moving t
        // rounds at least `time_cost·t`; coordinate deltas telescope
        // along any path, so `max(space_cost·Δspace, time_cost·Δround)`
        // lower-bounds every pair distance. The 1e-9 deflation keeps the
        // bound valid under floating-point division/multiplication
        // rounding.
        let (mut space, mut time) = (f64::INFINITY, f64::INFINITY);
        for e in graph.edges() {
            let Some(v) = e.v else { continue };
            let (cu, cv) = (graph.coord(e.u), graph.coord(v));
            let r = (cu.row - cv.row).abs().max((cu.col - cv.col).abs());
            if r > 0 {
                space = space.min(e.weight / r as f64);
            }
            let t = (cu.round - cv.round).abs();
            if t > 0 {
                time = time.min(e.weight / t as f64);
            }
        }
        let deflate = |slope: f64| {
            if slope.is_finite() {
                (slope * (1.0 - 1e-9)).max(0.0)
            } else {
                0.0
            }
        };
        // ALT landmarks: exact Dijkstra distances from a handful of
        // farthest-point-sampled detectors, chosen once per graph. The
        // coordinate slopes above are weak exactly where the on-demand
        // engine hurts most — bulk pairs whose cheapest chains run along
        // diagonal mechanisms — while `|d(l,i) − d(l,j)|` is near-tight
        // whenever some landmark lies roughly behind one endpoint, so
        // together they certify most far pairs without growing a region.
        let num_land = n.min(NUM_LANDMARKS);
        let mut land = vec![f64::INFINITY; n * num_land];
        if num_land > 0 {
            let mut dist = vec![f64::INFINITY; n];
            let mut mindist = vec![f64::INFINITY; n];
            let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
            let mut seed = 0u32;
            for l in 0..num_land {
                dist.iter_mut().for_each(|d| *d = f64::INFINITY);
                dist[seed as usize] = 0.0;
                heap.clear();
                heap.push(Reverse((OrdF64(0.0), seed)));
                while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
                    if d > dist[u as usize] {
                        continue;
                    }
                    for &ei in graph.incident_edges(u) {
                        let e = &graph.edges()[ei as usize];
                        let Some(v) = e.v else { continue };
                        let w = if e.u == u { v } else { e.u };
                        let nd = d + e.weight;
                        if nd < dist[w as usize] {
                            dist[w as usize] = nd;
                            heap.push(Reverse((OrdF64(nd), w)));
                        }
                    }
                }
                // Next seed: the detector farthest (in graph metric) from
                // every landmark chosen so far; unreachable components
                // sort first so each gets its own landmark. Ties break to
                // the lowest index for determinism.
                let mut best = (f64::NEG_INFINITY, 0u32);
                for v in 0..n {
                    land[v * num_land + l] = dist[v];
                    let m = mindist[v].min(dist[v]);
                    mindist[v] = m;
                    if m > best.0 {
                        best = (m, v as u32);
                    }
                }
                seed = best.1;
            }
        }
        let mut adj_head = Vec::with_capacity(n + 1);
        let mut adj = Vec::new();
        adj_head.push(0u32);
        for u in 0..n as u32 {
            for &ei in graph.incident_edges(u) {
                let e = &graph.edges()[ei as usize];
                let Some(v) = e.v else { continue };
                adj.push(AdjEntry {
                    nbr: if e.u == u { v } else { e.u },
                    obs: e.observables,
                    weight: e.weight,
                });
            }
            adj_head.push(adj.len() as u32);
        }
        LocalWeightProvider {
            graph,
            boundary,
            space_cost: deflate(space),
            time_cost: deflate(time),
            land,
            num_land,
            node: vec![
                NodeState {
                    dist: f64::INFINITY,
                    stamp: 0,
                    parity: 0,
                };
                n
            ],
            epoch: 0,
            heap: BinaryHeap::new(),
            adj_head,
            w_max: adj.iter().map(|e| e.weight).fold(0.0, f64::max),
            w_gran: adj.iter().map(|e| e.weight).fold(f64::INFINITY, f64::min) * (1.0 - 1e-6),
            adj,
            dets: Vec::new(),
            slot: vec![0; n],
            slot_stamp: vec![0; n],
            slot_epoch: 0,
            weights: Vec::new(),
            obs: Vec::new(),
            bound: Vec::new(),
            staged: false,
            flavor: StageFlavor::Full,
            stats: LocalWeightStats::default(),
        }
    }

    /// The boundary table this provider reads.
    pub fn boundary(&self) -> &'a BoundaryTable {
        self.boundary
    }

    /// The fixed-point scale of the quantized view.
    pub fn scale(&self) -> f64 {
        self.boundary.scale()
    }

    /// Work counters since construction.
    pub fn stats(&self) -> LocalWeightStats {
        self.stats
    }

    /// Stages the pair-weight block for one detector list (ascending,
    /// deduplicated — how syndrome extraction produces it). Staging the
    /// identical list again is a memoized no-op.
    ///
    /// After staging, entry `(i, j)` of the block is the weight of the
    /// cheapest error chain from `dets[i]` to `dets[j]` as found by a
    /// Dijkstra expansion *from* `dets[i]` — relaxation-for-relaxation
    /// the same loop that fills GWT row `dets[i]`, so settled values are
    /// bit-identical to the table's. A search from `i` may stop early:
    /// any target `j` whose distance exceeds
    /// `max(bᵢ + bⱼ, (qbᵢ + qbⱼ + 1)/scale)` is left at `INFINITY`.
    /// Such a pair can never be preferred over matching both detectors to
    /// the boundary — in the exact domain its weight exceeds `bᵢ + bⱼ`,
    /// and in the quantized domain its rounded weight exceeds
    /// `qbᵢ + qbⱼ` — so every decoder comparison takes the same branch it
    /// would with the true value (all decode paths compare pair weights
    /// only against boundary sums or clamps at least as large).
    pub fn stage(&mut self, dets: &[u32]) {
        self.stats.stages += 1;
        if self.staged && self.flavor == StageFlavor::Full && self.dets == dets {
            self.stats.memo_hits += 1;
            return;
        }
        self.staged = false;
        let k = dets.len();
        self.dets.clear();
        self.dets.extend_from_slice(dets);
        self.slot_epoch = bump_epoch(self.slot_epoch, &mut self.slot_stamp);
        for (s, &d) in dets.iter().enumerate() {
            self.slot[d as usize] = s as u32;
            self.slot_stamp[d as usize] = self.slot_epoch;
        }
        self.weights.clear();
        self.weights.resize(k * k, f64::INFINITY);
        self.obs.clear();
        self.obs.resize(k * k, 0);
        for i in 0..k {
            self.weights[i * k + i] = 0.0;
        }
        for i in 0..k {
            self.expand(i);
        }
        self.staged = true;
        self.flavor = StageFlavor::Full;
    }

    /// One truncated per-source Dijkstra: fills row `i` of the staged
    /// block with settled distances from `dets[i]`.
    fn expand(&mut self, i: usize) {
        let k = self.dets.len();
        let src = self.dets[i];
        let b_src = self.boundary.weight(src);
        let qb_src = self.boundary.weight_q(src) as f64;
        let scale = self.boundary.scale();
        // Per-target settle bounds: a pair is only interesting while it
        // can beat boundary-plus-boundary in *either* weight domain. The
        // quantized bound is padded by one subunit so rounding can never
        // under-settle; over-settling is always sound.
        self.bound.clear();
        self.bound.resize(k, f64::NAN);
        let mut radius = f64::NEG_INFINITY;
        let mut remaining = 0usize;
        for j in 0..k {
            if j == i {
                continue;
            }
            let dst = self.dets[j];
            let exact_bound = b_src + self.boundary.weight(dst);
            let quant_bound = (qb_src + self.boundary.weight_q(dst) as f64 + 1.0) / scale;
            let b = exact_bound.max(quant_bound);
            if self.lower_bound(src, dst) > b * (1.0 + 1e-9) + 1e-9 {
                // Even the coordinate lower bound on the path weight
                // exceeds the settle bound: dominated, never searched.
                self.stats.excluded_targets += 1;
                continue;
            }
            self.bound[j] = b;
            radius = radius.max(b);
            remaining += 1;
        }
        if remaining == 0 {
            return;
        }
        self.stats.expansions += 1;
        // Relaxation-for-relaxation identical to the GWT's per-source
        // pass: Dijkstra settles nodes in nondecreasing distance, so a
        // truncated run is a prefix of the full run and every settled
        // distance/parity is the full run's value, bit for bit.
        let stamp = self.bump_node_epoch();
        self.node[src as usize] = NodeState {
            dist: 0.0,
            stamp,
            parity: 0,
        };
        self.heap.clear();
        self.heap.push(Reverse(heap_key(0.0, src)));
        while let Some(Reverse(key)) = self.heap.pop() {
            let d = heap_key_dist(key);
            let u = key as u32;
            if d > radius {
                break;
            }
            let nu = self.node[u as usize];
            if nu.stamp != stamp || d > nu.dist {
                continue;
            }
            self.stats.settled += 1;
            if u != src && self.slot_stamp[u as usize] == self.slot_epoch {
                let j = self.slot[u as usize] as usize;
                let cell = &mut self.weights[i * k + j];
                if cell.is_infinite() {
                    *cell = d;
                    self.obs[i * k + j] = nu.parity;
                    if !self.bound[j].is_nan() {
                        remaining -= 1;
                        if remaining == 0 {
                            break;
                        }
                    }
                }
            }
            let (a0, a1) = (
                self.adj_head[u as usize] as usize,
                self.adj_head[u as usize + 1] as usize,
            );
            for a in a0..a1 {
                let e = self.adj[a];
                let nd = d + e.weight;
                let nw = &mut self.node[e.nbr as usize];
                if nw.stamp != stamp || nd < nw.dist {
                    *nw = NodeState {
                        dist: nd,
                        stamp,
                        parity: nu.parity ^ e.obs,
                    };
                    self.heap.push(Reverse(heap_key(nd, e.nbr)));
                }
            }
        }
    }

    /// Stages the pair-weight block for one detector list with the
    /// on-demand engine: upper-triangle targets only, per-pair deadline
    /// certificates, dynamic shrinking radius (see the
    /// [`ondemand`](crate::ondemand) module docs). Every cell a decoder
    /// reads holds exactly the value [`stage`](Self::stage) would have
    /// put there: settled entries come from the identical relaxation
    /// loop, and the extra `INFINITY` entries are all certified
    /// dominated, the same substitution `stage` already relies on for
    /// its radius truncation.
    ///
    /// Restaging the identical list on demand is a memoized no-op; the
    /// memo is keyed by staging flavor, so a block staged by `stage`
    /// never masks an on-demand restage or vice versa.
    pub fn stage_ondemand(&mut self, dets: &[u32], od: &mut OndemandScratch) {
        od.stats.stages += 1;
        if self.staged && self.flavor == StageFlavor::Ondemand && self.dets == dets {
            od.stats.memo_hits += 1;
            return;
        }
        self.staged = false;
        let k = dets.len();
        self.dets.clear();
        self.dets.extend_from_slice(dets);
        self.slot_epoch = bump_epoch(self.slot_epoch, &mut self.slot_stamp);
        for (s, &d) in dets.iter().enumerate() {
            self.slot[d as usize] = s as u32;
            self.slot_stamp[d as usize] = self.slot_epoch;
        }
        self.weights.clear();
        self.weights.resize(k * k, f64::INFINITY);
        self.obs.clear();
        self.obs.resize(k * k, 0);
        for i in 0..k {
            self.weights[i * k + i] = 0.0;
        }
        od.pos.clear();
        od.pos.resize(k, u32::MAX);
        for i in 0..k {
            self.expand_ondemand(i, od);
        }
        self.staged = true;
        self.flavor = StageFlavor::Ondemand;
    }

    /// One deadline-bounded per-source Dijkstra: fills the settled part
    /// of row `i` (targets `j > i` only — the pair `(i, j)` is consumed
    /// exclusively through row `min(i, j)`) and mirrors each settled
    /// cell so the block stays symmetric.
    fn expand_ondemand(&mut self, i: usize, od: &mut OndemandScratch) {
        let k = self.dets.len();
        let src = self.dets[i];
        let b_src = self.boundary.weight(src);
        let qb_src = self.boundary.weight_q(src) as f64;
        let scale = self.boundary.scale();
        // Same per-target settle bounds and coordinate exclusion as
        // `expand`, restricted to the upper triangle, kept as a deadline
        // queue sorted ascending by bound.
        od.deadlines.clear();
        for j in (i + 1)..k {
            let dst = self.dets[j];
            let exact_bound = b_src + self.boundary.weight(dst);
            let quant_bound = (qb_src + self.boundary.weight_q(dst) as f64 + 1.0) / scale;
            let b = exact_bound.max(quant_bound);
            let cutoff = b * (1.0 + 1e-9) + 1e-9;
            if self.lower_bound(src, dst) > cutoff || self.landmark_bound(src, dst) > cutoff {
                od.stats.excluded += 1;
                continue;
            }
            od.deadlines.push((b, j as u32));
        }
        if od.deadlines.is_empty() {
            return;
        }
        od.deadlines
            .sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        od.resolved.clear();
        od.resolved.resize(od.deadlines.len(), false);
        for (p, &(_, j)) in od.deadlines.iter().enumerate() {
            od.pos[j as usize] = p as u32;
        }
        let mut remaining = od.deadlines.len();
        // All deadlines before `cursor` are resolved (settled or
        // expired); `tail` tracks the largest unresolved bound — the
        // active radius, which only shrinks as targets resolve.
        let mut cursor = 0usize;
        let mut tail = od.deadlines.len() - 1;
        od.stats.regions += 1;
        // The relaxation loop is `expand`'s, relaxation for relaxation:
        // same heap order `(distance, node)`, same strict-`<` rule, so
        // every settled distance and parity is bit-identical.
        let stamp = self.bump_node_epoch();
        self.node[src as usize] = NodeState {
            dist: 0.0,
            stamp,
            parity: 0,
        };
        self.heap.clear();
        self.heap.push(Reverse(heap_key(0.0, src)));
        while let Some(Reverse(key)) = self.heap.pop() {
            let d = heap_key_dist(key);
            let u = key as u32;
            // Expire deadlines the frontier has passed: settles are
            // nondecreasing in distance, so `bound < d` with the target
            // unsettled proves its distance exceeds its bound —
            // dominated, leave `INFINITY`.
            while cursor < od.deadlines.len() && od.deadlines[cursor].0 < d {
                if !od.resolved[cursor] {
                    od.resolved[cursor] = true;
                    od.pos[od.deadlines[cursor].1 as usize] = u32::MAX;
                    od.stats.deadline_pruned += 1;
                    remaining -= 1;
                }
                cursor += 1;
            }
            if remaining == 0 {
                break;
            }
            while od.resolved[tail] {
                tail -= 1;
            }
            let radius = od.deadlines[tail].0;
            let nu = self.node[u as usize];
            if nu.stamp != stamp || d > nu.dist {
                continue;
            }
            od.stats.settled += 1;
            if u != src && self.slot_stamp[u as usize] == self.slot_epoch {
                let j = self.slot[u as usize] as usize;
                let p = od.pos[j];
                if p != u32::MAX {
                    // An active target settled within its bound: record
                    // the exact pair edge (and its mirror).
                    self.weights[i * k + j] = d;
                    self.obs[i * k + j] = nu.parity;
                    self.weights[j * k + i] = d;
                    self.obs[j * k + i] = nu.parity;
                    od.resolved[p as usize] = true;
                    od.pos[j] = u32::MAX;
                    od.stats.collisions += 1;
                    remaining -= 1;
                    if remaining == 0 {
                        break;
                    }
                }
            }
            let (a0, a1) = (
                self.adj_head[u as usize] as usize,
                self.adj_head[u as usize + 1] as usize,
            );
            for a in a0..a1 {
                let e = self.adj[a];
                let nd = d + e.weight;
                let nw = &mut self.node[e.nbr as usize];
                if nw.stamp != stamp || nd < nw.dist {
                    *nw = NodeState {
                        dist: nd,
                        stamp,
                        parity: nu.parity ^ e.obs,
                    };
                    // Nodes beyond the active radius can never settle
                    // (the radius only shrinks), so their heap entries
                    // would only ever be popped dead — skip the push.
                    // Their recorded distance stays live: a later,
                    // cheaper relaxation re-enters through the same
                    // strict-`<` test exactly as in `expand`.
                    if nd <= radius {
                        self.heap.push(Reverse(heap_key(nd, e.nbr)));
                    }
                }
            }
        }
        // Targets the frontier never reached (heap drained first) are
        // dominated by the same certificate: clear their queue slots.
        for p in cursor..od.deadlines.len() {
            if !od.resolved[p] {
                od.resolved[p] = true;
                od.pos[od.deadlines[p].1 as usize] = u32::MAX;
                od.stats.deadline_pruned += 1;
            }
        }
    }

    /// Stages the pair-weight block for one detector list with the
    /// graph-native primal-dual engine: every fired detector grows its
    /// own fractional-radius capped Dijkstra ball over the provider's
    /// stamped node arrays, and pair weights are recovered afterwards
    /// from co-settlement alone — no one-sided search ever runs (see
    /// the [`graph_pd`](crate::graph_pd) module docs for the share-pass
    /// and witness-exactness arguments).
    ///
    /// The resulting block has the staged oracle's *semantics* — the
    /// same settled-pair set (`d(i, j) ≤ bound(i, j)`), exact weights
    /// for settled pairs, `INFINITY` with a dominance certificate for
    /// the rest — but is **not bit-identical**: meet weights associate
    /// the f64 sum differently (two partial chains instead of one rooted
    /// chain) and equal-weight shortest chains may tie-break to a
    /// different observable parity. Decoders built on this block carry
    /// an optimality certificate (equal total matching weight under the
    /// oracle's weights), not a matching-for-matching identity; that is
    /// the [`DeepBackend::GraphPd`] contract, enforced by
    /// `tests/graphpd_vs_ondemand.rs`.
    ///
    /// Restaging the identical list is a memoized no-op, keyed by
    /// staging flavor like the other engines.
    ///
    /// [`DeepBackend::GraphPd`]: https://docs.rs/blossom-mwpm
    pub fn stage_graph_pd(&mut self, dets: &[u32], gp: &mut GraphPdScratch) {
        gp.stats.stages += 1;
        if self.staged && self.flavor == StageFlavor::GraphPd && self.dets == dets {
            gp.stats.memo_hits += 1;
            return;
        }
        self.staged = false;
        let k = dets.len();
        self.dets.clear();
        self.dets.extend_from_slice(dets);
        self.slot_epoch = bump_epoch(self.slot_epoch, &mut self.slot_stamp);
        for (s, &d) in dets.iter().enumerate() {
            self.slot[d as usize] = s as u32;
            self.slot_stamp[d as usize] = self.slot_epoch;
        }
        let scale = self.boundary.scale();

        // Distance envelope: landmark lower/upper bounds for every slot
        // pair, with the upper bounds sharpened by a metric closure
        // through the fired detectors themselves — `ub(i, j) ≤
        // ub(i, m) + ub(m, j)` stays sound because each term
        // overestimates a true distance. Landmarks are global, detector
        // chains are local; the closure recovers tight radii for pairs
        // the landmarks see poorly. Cubic in k and row-vectorized, so
        // the very deepest shots fall back to raw landmark bounds
        // rather than pay k³.
        gp.lb.clear();
        gp.lb.resize(k * k, 0.0);
        gp.ub.clear();
        gp.ub.resize(k * k, 0.0);
        for i in 0..k {
            for j in (i + 1)..k {
                let (lm_lb, lm_ub) = self.landmark_bounds(dets[i], dets[j]);
                gp.lb[i * k + j] = lm_lb;
                gp.lb[j * k + i] = lm_lb;
                gp.ub[i * k + j] = lm_ub;
                gp.ub[j * k + i] = lm_ub;
            }
        }
        if k <= GRAPH_PD_CLOSURE_LIMIT {
            gp.closure_row.resize(k, 0.0);
            for m in 0..k {
                gp.closure_row.copy_from_slice(&gp.ub[m * k..(m + 1) * k]);
                for i in 0..k {
                    let base = gp.ub[i * k + m];
                    if !base.is_finite() {
                        continue;
                    }
                    let row = &mut gp.ub[i * k..(i + 1) * k];
                    for (u, &pivot) in row.iter_mut().zip(&gp.closure_row) {
                        *u = u.min(base + pivot);
                    }
                }
            }
        }

        // Pair census: exclude what a lower bound certifies dominated,
        // record every kept pair's requirement, and accumulate
        // tentative midpoint caps (reusing the closure row buffer).
        gp.pairs.clear();
        gp.regions.clear();
        gp.regions.resize(k, RegionRec { cap: 0.0, pairs: 0 });
        gp.closure_row.clear();
        gp.closure_row.resize(k, 0.0);
        for i in 0..k {
            let src = dets[i];
            let b_src = self.boundary.weight(src);
            let qb_src = self.boundary.weight_q(src) as f64;
            for (j, &dst) in dets.iter().enumerate().skip(i + 1) {
                let exact_bound = b_src + self.boundary.weight(dst);
                let quant_bound = (qb_src + self.boundary.weight_q(dst) as f64 + 1.0) / scale;
                let b = exact_bound.max(quant_bound);
                let cutoff = b * (1.0 + 1e-9) + 1e-9;
                let lm_lb = gp.lb[i * k + j];
                let lm_ub = gp.ub[i * k + j];
                if self.lower_bound(src, dst) > cutoff || lm_lb > cutoff {
                    gp.stats.excluded += 1;
                    continue;
                }
                // Only min(bound, landmark upper bound) of growth,
                // plus one split edge, split across the two endpoint
                // balls can matter for this pair: whenever the two cap
                // radii sum to the chain weight plus w_max, the first
                // chain node within the walked cap is witnessed by both
                // balls. `cut` temporarily holds the whole joint
                // requirement; the share pass below divides it.
                let need2 = b.min(lm_ub) + self.w_max;
                gp.pairs.push(PairRec {
                    mu: f64::INFINITY,
                    bound: b,
                    cut: need2,
                    parity: 0,
                    i: i as u32,
                    j: j as u32,
                });
                let half = 0.5 * need2;
                for r in [i, j] {
                    gp.regions[r].pairs += 1;
                    if half > gp.closure_row[r] {
                        gp.closure_row[r] = half;
                    }
                }
            }
        }

        // Share passes: divide each pair's requirement across its two
        // balls in proportion to the previous round's caps, so a
        // region that must grow far for its worst pair absorbs its
        // other pairs almost for free and their partners stay small.
        // Any split is sound — whenever the two caps sum to the joint
        // requirement, the first shortest-chain node inside the walked
        // cap is a witness in both balls — so each round's caps are
        // feasible by construction, and a few rounds let the skew
        // concentrate. The final round assigns roles and stores the
        // walked (second) side's share as the pair's sweep cutoff.
        for round in 0..4 {
            let last = round == 3;
            for pr in &mut gp.pairs {
                let (i, j) = (pr.i as usize, pr.j as usize);
                let (ti, tj) = (gp.closure_row[i], gp.closure_row[j]);
                let frac = if ti + tj > 0.0 { ti / (ti + tj) } else { 0.5 };
                let need2 = pr.cut;
                let share_i = need2 * frac;
                let share_j = need2 - share_i;
                if last {
                    // Walk the smaller share, then skew the split
                    // further toward the dense side: region caps are
                    // shared across a region's pairs while the probe
                    // walk is paid per pair, so shaving the walk radius
                    // wins even when it bumps a ball.
                    let (dense, walk, ws) = if share_i >= share_j {
                        (i, j, share_j)
                    } else {
                        (j, i, share_i)
                    };
                    let ws = ws * 0.8;
                    let ds = need2 - ws;
                    pr.i = dense as u32;
                    pr.j = walk as u32;
                    pr.cut = ws * (1.0 + 1e-9) + 1e-9;
                    let dense_need = ds * (1.0 + 1e-9) + 1e-9;
                    let reg = &mut gp.regions[dense];
                    if dense_need > reg.cap {
                        reg.cap = dense_need;
                    }
                    let reg = &mut gp.regions[walk];
                    if pr.cut > reg.cap {
                        reg.cap = pr.cut;
                    }
                } else {
                    let reg = &mut gp.regions[i];
                    if share_i > reg.cap {
                        reg.cap = share_i;
                    }
                    let reg = &mut gp.regions[j];
                    if share_j > reg.cap {
                        reg.cap = share_j;
                    }
                }
            }
            if !last {
                for r in 0..k {
                    gp.closure_row[r] = gp.regions[r].cap;
                    gp.regions[r].cap = 0.0;
                }
            }
        }
        // Role swapping broke the census's grouped-by-first-endpoint
        // order the sweep relies on; restore it.
        gp.pairs.sort_unstable_by_key(|pr| pr.i);

        // Growth: one capped Dijkstra per region with tracked pairs,
        // the on-demand engine's settle loop verbatim, logging each
        // region's ball as a contiguous run.
        gp.ball.clear();
        gp.ball_head.clear();
        gp.ball_head.push(0);
        for (i, &src) in dets.iter().enumerate() {
            let RegionRec { cap, pairs } = gp.regions[i];
            if pairs == 0 {
                gp.ball_head.push(gp.ball.len() as u32);
                continue;
            }
            gp.stats.regions += 1;
            let stamp = self.bump_node_epoch();
            self.node[src as usize] = NodeState {
                dist: 0.0,
                stamp,
                parity: 0,
            };
            let gran = self.w_gran;
            let inv_gran = 1.0 / gran;
            let nb = (cap * inv_gran) as usize + 2;
            if gp.dial.len() < nb {
                gp.dial.resize_with(nb, Vec::new);
            }
            gp.dial[0].push(heap_key(0.0, src));
            let mut pending = 1usize;
            let mut b = 0usize;
            while pending > 0 {
                // Draining bucket `b` can never push back into it:
                // every relaxation adds at least one full granule.
                let bucket = std::mem::take(&mut gp.dial[b]);
                for &key in &bucket {
                    pending -= 1;
                    let d = heap_key_dist(key);
                    let u = key as u32;
                    let nu = self.node[u as usize];
                    if nu.stamp != stamp || d > nu.dist {
                        continue;
                    }
                    gp.stats.grows += 1;
                    gp.ball.push(BallEntry {
                        dist: d,
                        node: u,
                        par: nu.parity,
                    });
                    let a0 = self.adj_head[u as usize] as usize;
                    let a1 = self.adj_head[u as usize + 1] as usize;
                    gp.stats.edge_events += (a1 - a0) as u64;
                    for a in a0..a1 {
                        let e = self.adj[a];
                        let nd = d + e.weight;
                        let nw = &mut self.node[e.nbr as usize];
                        if nw.stamp != stamp || nd < nw.dist {
                            *nw = NodeState {
                                dist: nd,
                                stamp,
                                parity: nu.parity ^ e.obs,
                            };
                            // Beyond-cap frontier nodes are never
                            // pushed: with positive weights nothing
                            // outside the cap re-enters it, so the
                            // capped ball stays prefix-exact — the
                            // on-demand radius argument.
                            if nd <= cap {
                                gp.dial[(nd * inv_gran) as usize].push(heap_key(nd, e.nbr));
                                pending += 1;
                            }
                        }
                    }
                }
                let mut bucket = bucket;
                bucket.clear();
                gp.dial[b] = bucket;
                b += 1;
            }
            gp.stats.frozen += 1;
            gp.ball_head.push(gp.ball.len() as u32);
        }

        // Pair-major meet sweep. The census emitted pairs grouped by
        // first endpoint, so each region's ball is painted into the
        // dense O(ℓ) image exactly once; every pair of that group then
        // walks the partner ball's distance-sorted prefix up to its own
        // witness cutoff and probes the image. Per-pair cost scales
        // with that pair's relevant volume, not the region's worst
        // pair.
        let n_nodes = self.node.len();
        gp.dense.resize(n_nodes, DenseEntry::default());
        let mut p0 = 0;
        while p0 < gp.pairs.len() {
            let i = gp.pairs[p0].i;
            let mut p1 = p0 + 1;
            while p1 < gp.pairs.len() && gp.pairs[p1].i == i {
                p1 += 1;
            }
            let next = gp.dense_epoch.wrapping_add(1);
            gp.dense_epoch = if next == 0 {
                for d in &mut gp.dense {
                    d.stamp = 0;
                }
                1
            } else {
                next
            };
            let stamp = gp.dense_epoch;
            let s = gp.ball_head[i as usize] as usize;
            let e = gp.ball_head[i as usize + 1] as usize;
            for b in &gp.ball[s..e] {
                gp.dense[b.node as usize] = DenseEntry {
                    dist: b.dist,
                    stamp,
                    par: b.par,
                };
            }
            for p in p0..p1 {
                let pr = gp.pairs[p];
                let js = gp.ball_head[pr.j as usize] as usize;
                let je = gp.ball_head[pr.j as usize + 1] as usize;
                let mut mu = pr.mu;
                let mut par = pr.parity;
                let cut_s = pr.cut + self.w_gran;
                for b in &gp.ball[js..je] {
                    let dj = b.dist;
                    // Entries past the cutoff can't witness an exact
                    // chain; entries at or past the running minimum
                    // can't improve it (cand ≥ dj ≥ mu). The balls are
                    // bucket-ordered, not totally ordered, so both
                    // breaks carry one granule of slack — later entries
                    // can undershoot this one by at most `w_gran`.
                    if dj > cut_s || dj >= mu + self.w_gran {
                        break;
                    }
                    let d = gp.dense[b.node as usize];
                    if d.stamp != stamp {
                        continue;
                    }
                    let cand = d.dist + dj;
                    if cand < mu {
                        mu = cand;
                        par = d.par ^ b.par;
                    }
                }
                gp.pairs[p].mu = mu;
                gp.pairs[p].parity = par;
            }
            p0 = p1;
        }

        // Resolution: a witness at or under the bound is the exact pair
        // weight (merge); balls that never touched under the bound
        // certify boundary dominance in both weight domains.
        self.weights.clear();
        self.weights.resize(k * k, f64::INFINITY);
        self.obs.clear();
        self.obs.resize(k * k, 0);
        for i in 0..k {
            self.weights[i * k + i] = 0.0;
        }
        for pr in &gp.pairs {
            if pr.mu.is_finite() && pr.mu <= pr.bound {
                gp.stats.merges += 1;
                let (i, j) = (pr.i as usize, pr.j as usize);
                self.weights[i * k + j] = pr.mu;
                self.obs[i * k + j] = pr.parity;
                self.weights[j * k + i] = pr.mu;
                self.obs[j * k + i] = pr.parity;
            } else {
                gp.stats.deadline_pruned += 1;
            }
        }
        self.staged = true;
        self.flavor = StageFlavor::GraphPd;
    }

    /// Advances the Dijkstra stamp epoch, clearing stamps on wraparound.
    fn bump_node_epoch(&mut self) -> u32 {
        let next = self.epoch.wrapping_add(1);
        self.epoch = if next == 0 {
            for ns in &mut self.node {
                ns.stamp = 0;
            }
            1
        } else {
            next
        };
        self.epoch
    }

    /// Coordinate lower bound on the shortest-path weight between two
    /// detectors; zero when the graph offers no usable slope.
    #[inline]
    fn lower_bound(&self, a: u32, b: u32) -> f64 {
        let (ca, cb) = (self.graph.coord(a), self.graph.coord(b));
        let dr = (ca.row - cb.row).abs().max((ca.col - cb.col).abs()) as f64;
        let dt = (ca.round - cb.round).abs() as f64;
        (self.space_cost * dr).max(self.time_cost * dt)
    }

    /// ALT landmark lower bound on the shortest-path weight: the triangle
    /// inequality gives `d(a, b) ≥ |d(l, a) − d(l, b)|` for every
    /// landmark `l`, deflated by the usual 1e-9 so the bound stays valid
    /// under f64 rounding of the landmark distances. A landmark that
    /// reaches exactly one endpoint proves the pair disconnected (the
    /// bound is `INFINITY`); one that reaches neither contributes nothing
    /// (the `NaN` difference is discarded by `max`).
    #[inline]
    fn landmark_bound(&self, a: u32, b: u32) -> f64 {
        let l = self.num_land;
        let da = &self.land[a as usize * l..a as usize * l + l];
        let db = &self.land[b as usize * l..b as usize * l + l];
        let mut lb = 0.0f64;
        for (x, y) in da.iter().zip(db) {
            lb = lb.max((x - y).abs());
        }
        lb * (1.0 - 1e-9) - 1e-9
    }

    /// ALT landmark lower *and* upper bounds on the shortest-path weight
    /// in one pass over the landmark rows: the triangle inequality gives
    /// `|d(l, a) − d(l, b)| ≤ d(a, b) ≤ d(l, a) + d(l, b)` for every
    /// landmark `l`. The lower bound is deflated exactly like
    /// [`landmark_bound`](Self::landmark_bound); the upper bound is the
    /// raw f64 sum (callers inflate before trusting it as a radius). A
    /// landmark reaching neither endpoint contributes `NaN`/`INFINITY`,
    /// which `max`/`min` discard.
    #[inline]
    fn landmark_bounds(&self, a: u32, b: u32) -> (f64, f64) {
        let l = self.num_land;
        let da = &self.land[a as usize * l..a as usize * l + l];
        let db = &self.land[b as usize * l..b as usize * l + l];
        let mut lb = 0.0f64;
        let mut ub = f64::INFINITY;
        for (x, y) in da.iter().zip(db) {
            lb = lb.max((x - y).abs());
            ub = ub.min(x + y);
        }
        (lb * (1.0 - 1e-9) - 1e-9, ub)
    }

    /// Slot of a staged detector.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `det` was not part of the staged list.
    #[inline]
    fn slot_of(&self, det: u32) -> usize {
        debug_assert!(
            self.staged && self.slot_stamp[det as usize] == self.slot_epoch,
            "detector {det} not staged"
        );
        self.slot[det as usize] as usize
    }

    /// Raw exact pair weight from the staged block: bit-identical to
    /// `gwt.pair_weight(i, j)` when settled, `INFINITY` when dominated.
    #[inline]
    pub fn pair_weight(&self, i: u32, j: u32) -> f64 {
        self.weights[self.slot_of(i) * self.dets.len() + self.slot_of(j)]
    }

    /// Quantized pair weight: bit-identical to `gwt.pair_weight_q(i, j)`
    /// when settled, `u8::MAX` when dominated (in which case the true
    /// quantized weight also exceeds `qbᵢ + qbⱼ`, so comparisons agree).
    #[inline]
    pub fn pair_weight_q(&self, i: u32, j: u32) -> u8 {
        quantize(self.pair_weight(i, j), self.boundary.scale())
    }

    /// Observable parity of the staged shortest path `i → j`. Only
    /// meaningful for settled pairs; decoders read it only for pairs they
    /// mate, which are always settled.
    #[inline]
    pub fn pair_obs(&self, i: u32, j: u32) -> u32 {
        self.obs[self.slot_of(i) * self.dets.len() + self.slot_of(j)]
    }

    /// The staged counterpart of
    /// [`GlobalWeightTable::gather_small_quantized`](crate::GlobalWeightTable::gather_small_quantized):
    /// triangular pair order `(0,1), (0,2), (0,3), (1,2), (1,3), (2,3)`
    /// plus boundary weights, for `dets` a (sub)set of the staged list.
    pub fn gather_small_quantized(&self, dets: &[u32]) -> ([u16; 6], [u16; 4]) {
        let k = dets.len();
        debug_assert!(k <= 4);
        let n = self.dets.len();
        let scale = self.boundary.scale();
        let mut pairs = [0u16; 6];
        let mut boundary = [0u16; 4];
        let mut p = 0;
        for (i, &di) in dets.iter().enumerate() {
            let row = self.slot_of(di) * n;
            boundary[i] = self.boundary.weight_q(di) as u16;
            for &dj in &dets[i + 1..] {
                pairs[p] = quantize(self.weights[row + self.slot_of(dj)], scale) as u16;
                p += 1;
            }
        }
        (pairs, boundary)
    }

    /// The staged counterpart of
    /// [`GlobalWeightTable::gather_small_exact`](crate::GlobalWeightTable::gather_small_exact).
    pub fn gather_small_exact(&self, dets: &[u32], clamp: f64) -> ([f64; 6], [f64; 4]) {
        let k = dets.len();
        debug_assert!(k <= 4);
        let n = self.dets.len();
        let mut pairs = [0f64; 6];
        let mut boundary = [0f64; 4];
        let mut p = 0;
        for (i, &di) in dets.iter().enumerate() {
            let row = self.slot_of(di) * n;
            boundary[i] = self.boundary.weight(di);
            for &dj in &dets[i + 1..] {
                pairs[p] = self.weights[row + self.slot_of(dj)].min(clamp);
                p += 1;
            }
        }
        (pairs, boundary)
    }

    /// The staged counterpart of
    /// [`GlobalWeightTable::gather_exact_clamped`](crate::GlobalWeightTable::gather_exact_clamped):
    /// k×k clamped pair matrix (diagonal zero) plus the raw boundary
    /// vector, for `dets` a (sub)set of the staged list.
    pub fn gather_exact_clamped(
        &self,
        dets: &[u32],
        clamp: f64,
        weights: &mut Vec<f64>,
        boundary: &mut Vec<f64>,
    ) {
        let k = dets.len();
        let n = self.dets.len();
        weights.clear();
        weights.resize(k * k, 0.0);
        boundary.clear();
        boundary.resize(k, 0.0);
        for (i, &di) in dets.iter().enumerate() {
            let row = self.slot_of(di) * n;
            boundary[i] = self.boundary.weight(di);
            let dst = &mut weights[i * k..][..k];
            for (j, &dj) in dets.iter().enumerate() {
                if j != i {
                    dst[j] = self.weights[row + self.slot_of(dj)].min(clamp);
                }
            }
        }
    }

    /// Stages the dequantized weight matrix for the quantized decoder —
    /// the same values `MwpmDecoder::stage_quantized` derives from the
    /// table (`q as f64 / scale`, pairs clamped), drawn from the staged
    /// block instead.
    pub fn gather_quantized_clamped(
        &self,
        dets: &[u32],
        clamp: f64,
        weights: &mut Vec<f64>,
        boundary: &mut Vec<f64>,
    ) {
        let k = dets.len();
        let n = self.dets.len();
        let scale = self.boundary.scale();
        weights.clear();
        weights.resize(k * k, 0.0);
        boundary.clear();
        boundary.resize(k, 0.0);
        for (i, &di) in dets.iter().enumerate() {
            let row = self.slot_of(di) * n;
            boundary[i] = self.boundary.weight_q(di) as f64 / scale;
            let dst = &mut weights[i * k..][..k];
            for (j, &dj) in dets.iter().enumerate() {
                if j != i {
                    let q = quantize(self.weights[row + self.slot_of(dj)], scale);
                    dst[j] = (q as f64 / scale).min(clamp);
                }
            }
        }
    }
}

/// Advances a stamp epoch, clearing the stamp array on wraparound so a
/// stale stamp can never alias a live one.
fn bump_epoch(epoch: u32, stamps: &mut [u32]) -> u32 {
    let next = epoch.wrapping_add(1);
    if next == 0 {
        stamps.fill(0);
        return 1;
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gwt::GlobalWeightTable;
    use qec_circuit::{build_memory_z_circuit, NoiseModel};
    use surface_code::SurfaceCode;

    fn graph(d: usize, p: f64) -> MatchingGraph {
        let code = SurfaceCode::new(d).unwrap();
        let circuit = build_memory_z_circuit(&code, d, NoiseModel::depolarizing(p));
        MatchingGraph::from_circuit(&circuit)
    }

    #[test]
    fn boundary_table_matches_gwt_diagonal() {
        for (d, p) in [(3, 1e-3), (5, 5e-3), (7, 1e-3)] {
            let g = graph(d, p);
            let gwt = GlobalWeightTable::new(&g);
            let bt = BoundaryTable::new(&g);
            assert_eq!(bt.len(), gwt.len());
            for i in 0..gwt.len() as u32 {
                assert_eq!(bt.weight(i).to_bits(), gwt.boundary_weight(i).to_bits());
                assert_eq!(bt.obs(i), gwt.boundary_obs(i));
                assert_eq!(bt.weight_q(i), gwt.boundary_weight_q(i));
            }
        }
    }

    #[test]
    fn staged_entries_are_bit_identical_or_dominated() {
        let g = graph(5, 2e-3);
        let gwt = GlobalWeightTable::new(&g);
        let bt = BoundaryTable::new(&g);
        let mut p = LocalWeightProvider::new(&g, &bt);
        let n = g.num_detectors() as u32;
        let lists: Vec<Vec<u32>> = vec![
            vec![0],
            vec![0, 1],
            vec![0, n - 1],
            vec![3, 17, 40, 41],
            (0..n).step_by(7).collect(),
            (0..n).collect(),
        ];
        for dets in &lists {
            p.stage(dets);
            for &a in dets {
                for &b in dets {
                    if a == b {
                        continue;
                    }
                    let staged = p.pair_weight(a, b);
                    let truth = gwt.pair_weight(a, b);
                    if staged.is_finite() {
                        assert_eq!(
                            staged.to_bits(),
                            truth.to_bits(),
                            "settled ({a},{b}) differs"
                        );
                        assert_eq!(p.pair_obs(a, b), gwt.pair_obs(a, b));
                        assert_eq!(p.pair_weight_q(a, b), gwt.pair_weight_q(a, b));
                    } else {
                        // Dominated: the true weight must exceed the
                        // boundary alternative in both weight domains.
                        assert!(
                            truth > bt.weight(a) + bt.weight(b),
                            "unsettled ({a},{b}) not dominated: {truth}"
                        );
                        assert!(
                            gwt.pair_weight_q(a, b) as u16
                                > bt.weight_q(a) as u16 + bt.weight_q(b) as u16,
                            "unsettled ({a},{b}) not dominated in quantized domain"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn full_list_stage_settles_every_useful_pair() {
        // Every pair that could participate in an optimal matching
        // (weight at most the boundary sum) must be settled exactly.
        let g = graph(5, 1e-3);
        let gwt = GlobalWeightTable::new(&g);
        let bt = BoundaryTable::new(&g);
        let mut p = LocalWeightProvider::new(&g, &bt);
        let dets: Vec<u32> = (0..g.num_detectors() as u32).collect();
        p.stage(&dets);
        for &a in &dets {
            for &b in &dets {
                if a != b && gwt.pair_weight(a, b) <= bt.weight(a) + bt.weight(b) {
                    assert_eq!(
                        p.pair_weight(a, b).to_bits(),
                        gwt.pair_weight(a, b).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn gathers_match_gwt_gathers() {
        let g = graph(5, 2e-3);
        let gwt = GlobalWeightTable::new(&g);
        let bt = BoundaryTable::new(&g);
        let mut p = LocalWeightProvider::new(&g, &bt);
        let dets = vec![2u32, 9, 15, 33];
        p.stage(&dets);
        let (pe_l, be_l) = p.gather_small_exact(&dets, 2e4);
        let (pe_g, be_g) = gwt.gather_small_exact(&dets, 2e4);
        let (pq_l, bq_l) = p.gather_small_quantized(&dets);
        let (pq_g, bq_g) = gwt.gather_small_quantized(&dets);
        let mut t = 0;
        for i in 0..4 {
            for j in (i + 1)..4 {
                if p.pair_weight(dets[i], dets[j]).is_finite() {
                    // Settled: bit-equal to the GWT gather.
                    assert_eq!(pe_l[t].to_bits(), pe_g[t].to_bits());
                    assert_eq!(pq_l[t], pq_g[t]);
                } else {
                    // Dominated: local clamps/saturates, and the true
                    // value must beat the boundary sum in both domains.
                    assert_eq!(pe_l[t], 2e4);
                    assert_eq!(pq_l[t], u8::MAX as u16);
                    assert!(pe_g[t] > be_g[i] + be_g[j]);
                    assert!(pq_g[t] > bq_g[i] + bq_g[j]);
                }
                t += 1;
            }
        }
        assert_eq!(be_l, be_g);
        assert_eq!(bq_l, bq_g);

        let (mut wl, mut bl) = (Vec::new(), Vec::new());
        let (mut wg, mut bg) = (Vec::new(), Vec::new());
        p.gather_exact_clamped(&dets, 2e4, &mut wl, &mut bl);
        gwt.gather_exact_clamped(&dets, 2e4, &mut wg, &mut bg);
        assert_eq!(bl, bg);
        // Sub-list gathers read the staged block through the slot map.
        let sub = vec![9u32, 33];
        let (mut wsl, mut bsl) = (Vec::new(), Vec::new());
        p.gather_exact_clamped(&sub, 2e4, &mut wsl, &mut bsl);
        assert_eq!(bsl, vec![bt.weight(9), bt.weight(33)]);
        assert_eq!(wsl[0], 0.0);
        assert_eq!(wsl[1].to_bits(), wl[4 + 3].to_bits());
    }

    #[test]
    fn restaging_identical_list_is_memoized() {
        let g = graph(3, 1e-3);
        let bt = BoundaryTable::new(&g);
        let mut p = LocalWeightProvider::new(&g, &bt);
        p.stage(&[0, 5]);
        let after_first = p.stats();
        p.stage(&[0, 5]);
        let after_second = p.stats();
        assert_eq!(after_second.memo_hits, after_first.memo_hits + 1);
        assert_eq!(after_second.expansions, after_first.expansions);
        p.stage(&[0, 6]);
        assert!(p.stats().expansions > after_second.expansions);
    }

    #[test]
    fn ondemand_block_matches_staged_block_where_consumed() {
        // Differential ground truth for the on-demand engine: for every
        // upper-triangle pair, the on-demand cell is either bit-equal to
        // the staged cell (weight, parity, quantized view, and the
        // mirror), or `INFINITY` with the staged value certified
        // dominated (strictly above the pair's settle bound). Any pair
        // the decoders could actually prefer over boundary matching —
        // staged value at or below the bound — must be settled exactly.
        for (d, p) in [(3, 1e-3), (5, 5e-3), (5, 1e-3), (7, 2e-3)] {
            let g = graph(d, p);
            let bt = BoundaryTable::new(&g);
            let mut staged = LocalWeightProvider::new(&g, &bt);
            let mut ondemand = LocalWeightProvider::new(&g, &bt);
            let mut od = OndemandScratch::new();
            let n = g.num_detectors() as u32;
            let lists: Vec<Vec<u32>> = vec![
                vec![0, 1],
                vec![0, n - 1],
                (0..n).step_by(7).collect(),
                (0..n).step_by(3).collect(),
                (0..n).collect(),
            ];
            for dets in &lists {
                staged.stage(dets);
                ondemand.stage_ondemand(dets, &mut od);
                let k = dets.len();
                let scale = bt.scale();
                for i in 0..k {
                    for j in (i + 1)..k {
                        let (a, b) = (dets[i], dets[j]);
                        let sv = staged.pair_weight(a, b);
                        let ov = ondemand.pair_weight(a, b);
                        let bound = (bt.weight(a) + bt.weight(b))
                            .max((bt.weight_q(a) as f64 + bt.weight_q(b) as f64 + 1.0) / scale);
                        if ov.is_finite() {
                            assert_eq!(ov.to_bits(), sv.to_bits(), "({a},{b}) value differs");
                            assert_eq!(
                                ondemand.pair_obs(a, b),
                                staged.pair_obs(a, b),
                                "({a},{b}) parity differs"
                            );
                            assert_eq!(ondemand.pair_weight_q(a, b), staged.pair_weight_q(a, b));
                            // Mirror is symmetric.
                            assert_eq!(ondemand.pair_weight(b, a).to_bits(), ov.to_bits());
                            assert_eq!(ondemand.pair_obs(b, a), ondemand.pair_obs(a, b));
                        } else {
                            assert!(
                                sv > bound,
                                "({a},{b}) pruned but staged {sv} <= bound {bound}"
                            );
                        }
                        if sv <= bound {
                            assert!(ov.is_finite(), "({a},{b}) consumable pair not settled");
                        }
                    }
                }
            }
            assert!(!od.stats.is_idle());
            assert!(od.stats.collisions > 0);
        }
    }

    #[test]
    fn graph_pd_block_matches_staged_semantics() {
        // Differential ground truth for the graph-pd engine. The block is
        // not bit-identical to the staged oracle's (meet weights associate
        // the f64 sum differently), so the contract is semantic: the same
        // settled-pair set — settled iff the oracle distance is within the
        // pair's dominance bound — with settled weights equal to the
        // oracle's up to f64 association noise, symmetric mirrors, and
        // every unsettled pair certified dominated.
        for (d, p) in [(3, 1e-3), (5, 5e-3), (5, 1e-3), (7, 2e-3)] {
            let g = graph(d, p);
            let bt = BoundaryTable::new(&g);
            let mut staged = LocalWeightProvider::new(&g, &bt);
            let mut graphpd = LocalWeightProvider::new(&g, &bt);
            let mut gp = GraphPdScratch::new();
            let n = g.num_detectors() as u32;
            let lists: Vec<Vec<u32>> = vec![
                vec![0, 1],
                vec![0, n - 1],
                (0..n).step_by(7).collect(),
                (0..n).step_by(3).collect(),
                (0..n).collect(),
            ];
            for dets in &lists {
                staged.stage(dets);
                graphpd.stage_graph_pd(dets, &mut gp);
                let k = dets.len();
                let scale = bt.scale();
                for i in 0..k {
                    for j in (i + 1)..k {
                        let (a, b) = (dets[i], dets[j]);
                        let sv = staged.pair_weight(a, b);
                        let gv = graphpd.pair_weight(a, b);
                        let bound = (bt.weight(a) + bt.weight(b))
                            .max((bt.weight_q(a) as f64 + bt.weight_q(b) as f64 + 1.0) / scale);
                        if gv.is_finite() {
                            let tol = 1e-9 * (1.0 + sv.abs());
                            assert!(
                                (gv - sv).abs() <= tol,
                                "({a},{b}) weight {gv} vs oracle {sv}"
                            );
                            assert_eq!(graphpd.pair_weight(b, a).to_bits(), gv.to_bits());
                            assert_eq!(graphpd.pair_obs(b, a), graphpd.pair_obs(a, b));
                        } else {
                            assert!(
                                sv > bound * (1.0 - 1e-9),
                                "({a},{b}) pruned but oracle {sv} <= bound {bound}"
                            );
                        }
                        // Every pair the decoders could prefer over
                        // boundary matching must be discovered.
                        if sv <= bound * (1.0 - 1e-9) {
                            assert!(gv.is_finite(), "({a},{b}) consumable pair not met");
                        }
                    }
                }
            }
            assert!(!gp.stats.is_idle());
            assert!(gp.stats.merges > 0);
            assert!(gp.stats.grows > 0);
        }
    }

    #[test]
    fn graph_pd_pair_accounting_partitions() {
        // excluded + merges + deadline_pruned covers every pair of every
        // staging exactly once, and a memoized restage does no work.
        let g = graph(5, 3e-3);
        let bt = BoundaryTable::new(&g);
        let mut p = LocalWeightProvider::new(&g, &bt);
        let mut gp = GraphPdScratch::new();
        let n = g.num_detectors() as u32;
        let dets: Vec<u32> = (0..n).step_by(3).collect();
        let k = dets.len() as u64;
        p.stage_graph_pd(&dets, &mut gp);
        let s = gp.stats;
        assert_eq!(s.stages, 1);
        assert_eq!(s.excluded + s.merges + s.deadline_pruned, k * (k - 1) / 2);
        p.stage_graph_pd(&dets, &mut gp);
        let s2 = gp.stats;
        assert_eq!(s2.memo_hits, 1);
        assert_eq!(s2.grows, s.grows);
        assert_eq!(s2.merges, s.merges);
        // The graph-pd flavor must not serve the other engines' memos.
        let before = p.stats();
        p.stage(&dets);
        assert_eq!(p.stats().memo_hits, before.memo_hits);
        let mut od = OndemandScratch::new();
        p.stage_ondemand(&dets, &mut od);
        assert_eq!(od.stats.memo_hits, 0);
        p.stage_graph_pd(&dets, &mut gp);
        assert_eq!(gp.stats.memo_hits, 1);
        assert_eq!(gp.stats.stages, 3);
    }

    #[test]
    fn ondemand_memo_is_keyed_by_staging_flavor() {
        let g = graph(3, 1e-3);
        let bt = BoundaryTable::new(&g);
        let mut p = LocalWeightProvider::new(&g, &bt);
        let mut od = OndemandScratch::new();
        let dets = [0u32, 3, 5, 9];
        // A full-staged block must not serve an on-demand memo...
        p.stage(&dets);
        p.stage_ondemand(&dets, &mut od);
        assert_eq!(od.stats.memo_hits, 0);
        assert!(od.stats.regions > 0);
        // ...nor an on-demand block a full-staged memo...
        let before = p.stats();
        p.stage(&dets);
        assert_eq!(p.stats().memo_hits, before.memo_hits);
        assert!(p.stats().expansions > before.expansions);
        // ...while same-flavor restaging memoizes.
        p.stage_ondemand(&dets, &mut od);
        let regions = od.stats.regions;
        p.stage_ondemand(&dets, &mut od);
        assert_eq!(od.stats.memo_hits, 1);
        assert_eq!(od.stats.regions, regions);
    }

    #[test]
    fn lower_bound_never_exceeds_true_distance() {
        let g = graph(5, 5e-3);
        let gwt = GlobalWeightTable::new(&g);
        let bt = BoundaryTable::new(&g);
        let p = LocalWeightProvider::new(&g, &bt);
        let n = g.num_detectors() as u32;
        for a in 0..n {
            for b in 0..n {
                if a != b && gwt.pair_weight(a, b).is_finite() {
                    assert!(
                        p.lower_bound(a, b) <= gwt.pair_weight(a, b) * (1.0 + 1e-9) + 1e-9,
                        "LB({a},{b}) = {} > dist {}",
                        p.lower_bound(a, b),
                        gwt.pair_weight(a, b)
                    );
                }
            }
        }
    }
}
