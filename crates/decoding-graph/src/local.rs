//! GWT-free weight provision: the boundary table and the staged local
//! weight provider behind [`WeightSource::Local`].
//!
//! The Global Weight Table stores all `ℓ²` pair weights up front, which
//! caps the reachable distance: 13 bytes per entry (quantized + exact +
//! observables) is ~42 MB at d = 15 and ~3 GB at d = 31. The local
//! provider keeps only `O(ℓ)` state — per-detector boundary distances
//! plus stamped Dijkstra scratch — and computes the pair weights a shot
//! actually needs on demand, by truncated per-source Dijkstra over the
//! sparse matching graph (the Sparse Blossom insight: matching never
//! looks past a small local ball).
//!
//! **Bit-identity contract.** Every staged entry is either *bit-identical*
//! to the corresponding Global Weight Table entry, or `f64::INFINITY` for
//! a pair whose true weight provably exceeds every threshold a decoder
//! compares it against (see [`LocalWeightProvider::stage`]). The decode
//! paths in `blossom-mwpm` only ever compare pair weights against
//! boundary-sum alternatives, so a dominated `INFINITY` and the true
//! (large) value take the same branch everywhere — predictions and
//! matchings are bit-identical to the GWT path, which CI enforces with a
//! differential suite at d ∈ {3, 5, 7}.

use crate::graph::MatchingGraph;
use crate::gwt::{quantize, OrdF64, DEFAULT_WEIGHT_SCALE};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which weight backend a [`DecodingContext`](crate::DecodingContext)
/// materializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightSource {
    /// Build the Global Weight Table only while its projected footprint
    /// fits [`GWT_AUTO_BUDGET_BYTES`](crate::GWT_AUTO_BUDGET_BYTES);
    /// beyond that, go GWT-free. This is the default.
    Auto,
    /// Always materialize the Global Weight Table (the paper's §5.1
    /// hardware structure).
    Gwt,
    /// Never materialize the table: decoders draw pair weights from a
    /// [`LocalWeightProvider`] on demand.
    Local,
}

/// Per-detector boundary distances: the cheapest error chain from each
/// detector to the lattice boundary, with its observable parity and the
/// 8-bit quantized view. Syndrome-independent, `O(ℓ)` memory — this is
/// the only precomputed table the GWT-free path keeps.
///
/// Computed by the same multi-source Dijkstra (seeded at every boundary
/// edge) that fills the Global Weight Table's diagonal, so the values are
/// bit-identical to `gwt.boundary_weight(i)` — the GWT builder itself
/// consumes a `BoundaryTable` for its diagonal.
#[derive(Debug, Clone)]
pub struct BoundaryTable {
    weight: Vec<f64>,
    obs: Vec<u32>,
    quantized: Vec<u8>,
    scale: f64,
}

impl BoundaryTable {
    /// Builds the table with the default fixed-point scale.
    pub fn new(graph: &MatchingGraph) -> BoundaryTable {
        BoundaryTable::with_scale(graph, DEFAULT_WEIGHT_SCALE)
    }

    /// Builds the table with a custom fixed-point scale (subunits per
    /// unit weight).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    pub fn with_scale(graph: &MatchingGraph, scale: f64) -> BoundaryTable {
        assert!(scale > 0.0 && scale.is_finite(), "invalid scale {scale}");
        let n = graph.num_detectors();
        let mut weight = vec![f64::INFINITY; n];
        let mut obs = vec![0u32; n];
        let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
        for det in 0..n as u32 {
            if let Some(be) = graph.boundary_edge(det) {
                if be.weight < weight[det as usize] {
                    weight[det as usize] = be.weight;
                    obs[det as usize] = be.observables;
                    heap.push(Reverse((OrdF64(be.weight), det)));
                }
            }
        }
        while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
            if d > weight[u as usize] {
                continue;
            }
            for &ei in graph.incident_edges(u) {
                let e = &graph.edges()[ei as usize];
                let Some(v) = e.v else { continue };
                let w = if e.u == u { v } else { e.u };
                let nd = d + e.weight;
                if nd < weight[w as usize] {
                    weight[w as usize] = nd;
                    obs[w as usize] = obs[u as usize] ^ e.observables;
                    heap.push(Reverse((OrdF64(nd), w)));
                }
            }
        }
        let quantized = weight.iter().map(|&w| quantize(w, scale)).collect();
        BoundaryTable {
            weight,
            obs,
            quantized,
            scale,
        }
    }

    /// Number of detectors.
    pub fn len(&self) -> usize {
        self.weight.len()
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.weight.is_empty()
    }

    /// The fixed-point scale (subunits per unit weight).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Exact boundary weight of detector `i` in `−log₁₀ P` units.
    #[inline]
    pub fn weight(&self, i: u32) -> f64 {
        self.weight[i as usize]
    }

    /// Observable-parity mask of the cheapest boundary chain of `i`.
    #[inline]
    pub fn obs(&self, i: u32) -> u32 {
        self.obs[i as usize]
    }

    /// Quantized boundary weight of detector `i`.
    #[inline]
    pub fn weight_q(&self, i: u32) -> u8 {
        self.quantized[i as usize]
    }
}

/// Work counters for a [`LocalWeightProvider`] — how much graph the
/// truncated searches actually touch, and how often the staged-block memo
/// short-circuits a restage. Exposed so benches and smoke tests can
/// assert the local path is non-idle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalWeightStats {
    /// Calls to [`LocalWeightProvider::stage`].
    pub stages: u64,
    /// Stages answered by the already-staged block (identical detector
    /// list — the repeated singles/pairs of the screen cache, and
    /// replayed shots on served streams).
    pub memo_hits: u64,
    /// Per-source truncated Dijkstra expansions actually run.
    pub expansions: u64,
    /// Nodes settled (popped final) across all expansions.
    pub settled: u64,
    /// Pair targets skipped outright by the coordinate lower bound —
    /// provably dominated by boundary matching, never searched for.
    pub excluded_targets: u64,
}

/// On-demand staged pair weights over the sparse matching graph — the
/// GWT-free backend decoders use under [`WeightSource::Local`].
///
/// [`stage`](Self::stage) runs one truncated Dijkstra per fired detector
/// and records, for every pair of the shot, either the exact
/// shortest-path weight (bit-identical to the Global Weight Table entry)
/// or `INFINITY` when the pair is provably dominated. All scratch is
/// stamped and reused: zero steady-state allocations once warm. One
/// provider lives inside each per-worker decoder.
#[derive(Debug, Clone)]
pub struct LocalWeightProvider<'a> {
    graph: &'a MatchingGraph,
    boundary: &'a BoundaryTable,
    /// Minimum edge weight per unit of Chebyshev lattice displacement
    /// (deflated by 1 − 1e-9 to stay a valid bound under f64 rounding);
    /// zero disables the spatial lower bound.
    space_cost: f64,
    /// Minimum edge weight per unit of round displacement, deflated
    /// likewise; zero disables the temporal lower bound.
    time_cost: f64,
    // Stamped Dijkstra state over the whole graph (O(ℓ), reused).
    dist: Vec<f64>,
    parity: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<Reverse<(OrdF64, u32)>>,
    // The staged k×k block for the current detector list.
    dets: Vec<u32>,
    slot: Vec<u32>,
    slot_stamp: Vec<u32>,
    slot_epoch: u32,
    weights: Vec<f64>,
    obs: Vec<u32>,
    /// Per-target settle bound of the current expansion (NaN = excluded).
    bound: Vec<f64>,
    staged: bool,
    stats: LocalWeightStats,
}

impl<'a> LocalWeightProvider<'a> {
    /// Creates a provider over a matching graph and its boundary table.
    ///
    /// # Panics
    ///
    /// Panics if the boundary table was built for a different number of
    /// detectors.
    pub fn new(graph: &'a MatchingGraph, boundary: &'a BoundaryTable) -> LocalWeightProvider<'a> {
        let n = graph.num_detectors();
        assert_eq!(
            boundary.len(),
            n,
            "boundary table size does not match the graph"
        );
        // Lower-bound slopes: every internal edge moving r lattice units
        // (Chebyshev) costs at least `space_cost·r`, every edge moving t
        // rounds at least `time_cost·t`; coordinate deltas telescope
        // along any path, so `max(space_cost·Δspace, time_cost·Δround)`
        // lower-bounds every pair distance. The 1e-9 deflation keeps the
        // bound valid under floating-point division/multiplication
        // rounding.
        let (mut space, mut time) = (f64::INFINITY, f64::INFINITY);
        for e in graph.edges() {
            let Some(v) = e.v else { continue };
            let (cu, cv) = (graph.coord(e.u), graph.coord(v));
            let r = (cu.row - cv.row).abs().max((cu.col - cv.col).abs());
            if r > 0 {
                space = space.min(e.weight / r as f64);
            }
            let t = (cu.round - cv.round).abs();
            if t > 0 {
                time = time.min(e.weight / t as f64);
            }
        }
        let deflate = |slope: f64| {
            if slope.is_finite() {
                (slope * (1.0 - 1e-9)).max(0.0)
            } else {
                0.0
            }
        };
        LocalWeightProvider {
            graph,
            boundary,
            space_cost: deflate(space),
            time_cost: deflate(time),
            dist: vec![f64::INFINITY; n],
            parity: vec![0; n],
            stamp: vec![0; n],
            epoch: 0,
            heap: BinaryHeap::new(),
            dets: Vec::new(),
            slot: vec![0; n],
            slot_stamp: vec![0; n],
            slot_epoch: 0,
            weights: Vec::new(),
            obs: Vec::new(),
            bound: Vec::new(),
            staged: false,
            stats: LocalWeightStats::default(),
        }
    }

    /// The boundary table this provider reads.
    pub fn boundary(&self) -> &'a BoundaryTable {
        self.boundary
    }

    /// The fixed-point scale of the quantized view.
    pub fn scale(&self) -> f64 {
        self.boundary.scale()
    }

    /// Work counters since construction.
    pub fn stats(&self) -> LocalWeightStats {
        self.stats
    }

    /// Stages the pair-weight block for one detector list (ascending,
    /// deduplicated — how syndrome extraction produces it). Staging the
    /// identical list again is a memoized no-op.
    ///
    /// After staging, entry `(i, j)` of the block is the weight of the
    /// cheapest error chain from `dets[i]` to `dets[j]` as found by a
    /// Dijkstra expansion *from* `dets[i]` — relaxation-for-relaxation
    /// the same loop that fills GWT row `dets[i]`, so settled values are
    /// bit-identical to the table's. A search from `i` may stop early:
    /// any target `j` whose distance exceeds
    /// `max(bᵢ + bⱼ, (qbᵢ + qbⱼ + 1)/scale)` is left at `INFINITY`.
    /// Such a pair can never be preferred over matching both detectors to
    /// the boundary — in the exact domain its weight exceeds `bᵢ + bⱼ`,
    /// and in the quantized domain its rounded weight exceeds
    /// `qbᵢ + qbⱼ` — so every decoder comparison takes the same branch it
    /// would with the true value (all decode paths compare pair weights
    /// only against boundary sums or clamps at least as large).
    pub fn stage(&mut self, dets: &[u32]) {
        self.stats.stages += 1;
        if self.staged && self.dets == dets {
            self.stats.memo_hits += 1;
            return;
        }
        self.staged = false;
        let k = dets.len();
        self.dets.clear();
        self.dets.extend_from_slice(dets);
        self.slot_epoch = bump_epoch(self.slot_epoch, &mut self.slot_stamp);
        for (s, &d) in dets.iter().enumerate() {
            self.slot[d as usize] = s as u32;
            self.slot_stamp[d as usize] = self.slot_epoch;
        }
        self.weights.clear();
        self.weights.resize(k * k, f64::INFINITY);
        self.obs.clear();
        self.obs.resize(k * k, 0);
        for i in 0..k {
            self.weights[i * k + i] = 0.0;
        }
        for i in 0..k {
            self.expand(i);
        }
        self.staged = true;
    }

    /// One truncated per-source Dijkstra: fills row `i` of the staged
    /// block with settled distances from `dets[i]`.
    fn expand(&mut self, i: usize) {
        let k = self.dets.len();
        let src = self.dets[i];
        let b_src = self.boundary.weight(src);
        let qb_src = self.boundary.weight_q(src) as f64;
        let scale = self.boundary.scale();
        // Per-target settle bounds: a pair is only interesting while it
        // can beat boundary-plus-boundary in *either* weight domain. The
        // quantized bound is padded by one subunit so rounding can never
        // under-settle; over-settling is always sound.
        self.bound.clear();
        self.bound.resize(k, f64::NAN);
        let mut radius = f64::NEG_INFINITY;
        let mut remaining = 0usize;
        for j in 0..k {
            if j == i {
                continue;
            }
            let dst = self.dets[j];
            let exact_bound = b_src + self.boundary.weight(dst);
            let quant_bound = (qb_src + self.boundary.weight_q(dst) as f64 + 1.0) / scale;
            let b = exact_bound.max(quant_bound);
            if self.lower_bound(src, dst) > b * (1.0 + 1e-9) + 1e-9 {
                // Even the coordinate lower bound on the path weight
                // exceeds the settle bound: dominated, never searched.
                self.stats.excluded_targets += 1;
                continue;
            }
            self.bound[j] = b;
            radius = radius.max(b);
            remaining += 1;
        }
        if remaining == 0 {
            return;
        }
        self.stats.expansions += 1;
        // Relaxation-for-relaxation identical to the GWT's per-source
        // pass: Dijkstra settles nodes in nondecreasing distance, so a
        // truncated run is a prefix of the full run and every settled
        // distance/parity is the full run's value, bit for bit.
        let stamp = bump_epoch(self.epoch, &mut self.stamp);
        self.epoch = stamp;
        self.dist[src as usize] = 0.0;
        self.parity[src as usize] = 0;
        self.stamp[src as usize] = stamp;
        self.heap.clear();
        self.heap.push(Reverse((OrdF64(0.0), src)));
        while let Some(Reverse((OrdF64(d), u))) = self.heap.pop() {
            if d > radius {
                break;
            }
            if self.stamp[u as usize] != stamp || d > self.dist[u as usize] {
                continue;
            }
            self.stats.settled += 1;
            if u != src && self.slot_stamp[u as usize] == self.slot_epoch {
                let j = self.slot[u as usize] as usize;
                let cell = &mut self.weights[i * k + j];
                if cell.is_infinite() {
                    *cell = d;
                    self.obs[i * k + j] = self.parity[u as usize];
                    if !self.bound[j].is_nan() {
                        remaining -= 1;
                        if remaining == 0 {
                            break;
                        }
                    }
                }
            }
            for &ei in self.graph.incident_edges(u) {
                let e = &self.graph.edges()[ei as usize];
                let Some(v) = e.v else { continue };
                let w = if e.u == u { v } else { e.u };
                let nd = d + e.weight;
                if self.stamp[w as usize] != stamp || nd < self.dist[w as usize] {
                    self.stamp[w as usize] = stamp;
                    self.dist[w as usize] = nd;
                    self.parity[w as usize] = self.parity[u as usize] ^ e.observables;
                    self.heap.push(Reverse((OrdF64(nd), w)));
                }
            }
        }
    }

    /// Coordinate lower bound on the shortest-path weight between two
    /// detectors; zero when the graph offers no usable slope.
    #[inline]
    fn lower_bound(&self, a: u32, b: u32) -> f64 {
        let (ca, cb) = (self.graph.coord(a), self.graph.coord(b));
        let dr = (ca.row - cb.row).abs().max((ca.col - cb.col).abs()) as f64;
        let dt = (ca.round - cb.round).abs() as f64;
        (self.space_cost * dr).max(self.time_cost * dt)
    }

    /// Slot of a staged detector.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `det` was not part of the staged list.
    #[inline]
    fn slot_of(&self, det: u32) -> usize {
        debug_assert!(
            self.staged && self.slot_stamp[det as usize] == self.slot_epoch,
            "detector {det} not staged"
        );
        self.slot[det as usize] as usize
    }

    /// Raw exact pair weight from the staged block: bit-identical to
    /// `gwt.pair_weight(i, j)` when settled, `INFINITY` when dominated.
    #[inline]
    pub fn pair_weight(&self, i: u32, j: u32) -> f64 {
        self.weights[self.slot_of(i) * self.dets.len() + self.slot_of(j)]
    }

    /// Quantized pair weight: bit-identical to `gwt.pair_weight_q(i, j)`
    /// when settled, `u8::MAX` when dominated (in which case the true
    /// quantized weight also exceeds `qbᵢ + qbⱼ`, so comparisons agree).
    #[inline]
    pub fn pair_weight_q(&self, i: u32, j: u32) -> u8 {
        quantize(self.pair_weight(i, j), self.boundary.scale())
    }

    /// Observable parity of the staged shortest path `i → j`. Only
    /// meaningful for settled pairs; decoders read it only for pairs they
    /// mate, which are always settled.
    #[inline]
    pub fn pair_obs(&self, i: u32, j: u32) -> u32 {
        self.obs[self.slot_of(i) * self.dets.len() + self.slot_of(j)]
    }

    /// The staged counterpart of
    /// [`GlobalWeightTable::gather_small_quantized`](crate::GlobalWeightTable::gather_small_quantized):
    /// triangular pair order `(0,1), (0,2), (0,3), (1,2), (1,3), (2,3)`
    /// plus boundary weights, for `dets` a (sub)set of the staged list.
    pub fn gather_small_quantized(&self, dets: &[u32]) -> ([u16; 6], [u16; 4]) {
        let k = dets.len();
        debug_assert!(k <= 4);
        let n = self.dets.len();
        let scale = self.boundary.scale();
        let mut pairs = [0u16; 6];
        let mut boundary = [0u16; 4];
        let mut p = 0;
        for (i, &di) in dets.iter().enumerate() {
            let row = self.slot_of(di) * n;
            boundary[i] = self.boundary.weight_q(di) as u16;
            for &dj in &dets[i + 1..] {
                pairs[p] = quantize(self.weights[row + self.slot_of(dj)], scale) as u16;
                p += 1;
            }
        }
        (pairs, boundary)
    }

    /// The staged counterpart of
    /// [`GlobalWeightTable::gather_small_exact`](crate::GlobalWeightTable::gather_small_exact).
    pub fn gather_small_exact(&self, dets: &[u32], clamp: f64) -> ([f64; 6], [f64; 4]) {
        let k = dets.len();
        debug_assert!(k <= 4);
        let n = self.dets.len();
        let mut pairs = [0f64; 6];
        let mut boundary = [0f64; 4];
        let mut p = 0;
        for (i, &di) in dets.iter().enumerate() {
            let row = self.slot_of(di) * n;
            boundary[i] = self.boundary.weight(di);
            for &dj in &dets[i + 1..] {
                pairs[p] = self.weights[row + self.slot_of(dj)].min(clamp);
                p += 1;
            }
        }
        (pairs, boundary)
    }

    /// The staged counterpart of
    /// [`GlobalWeightTable::gather_exact_clamped`](crate::GlobalWeightTable::gather_exact_clamped):
    /// k×k clamped pair matrix (diagonal zero) plus the raw boundary
    /// vector, for `dets` a (sub)set of the staged list.
    pub fn gather_exact_clamped(
        &self,
        dets: &[u32],
        clamp: f64,
        weights: &mut Vec<f64>,
        boundary: &mut Vec<f64>,
    ) {
        let k = dets.len();
        let n = self.dets.len();
        weights.clear();
        weights.resize(k * k, 0.0);
        boundary.clear();
        boundary.resize(k, 0.0);
        for (i, &di) in dets.iter().enumerate() {
            let row = self.slot_of(di) * n;
            boundary[i] = self.boundary.weight(di);
            let dst = &mut weights[i * k..][..k];
            for (j, &dj) in dets.iter().enumerate() {
                if j != i {
                    dst[j] = self.weights[row + self.slot_of(dj)].min(clamp);
                }
            }
        }
    }

    /// Stages the dequantized weight matrix for the quantized decoder —
    /// the same values `MwpmDecoder::stage_quantized` derives from the
    /// table (`q as f64 / scale`, pairs clamped), drawn from the staged
    /// block instead.
    pub fn gather_quantized_clamped(
        &self,
        dets: &[u32],
        clamp: f64,
        weights: &mut Vec<f64>,
        boundary: &mut Vec<f64>,
    ) {
        let k = dets.len();
        let n = self.dets.len();
        let scale = self.boundary.scale();
        weights.clear();
        weights.resize(k * k, 0.0);
        boundary.clear();
        boundary.resize(k, 0.0);
        for (i, &di) in dets.iter().enumerate() {
            let row = self.slot_of(di) * n;
            boundary[i] = self.boundary.weight_q(di) as f64 / scale;
            let dst = &mut weights[i * k..][..k];
            for (j, &dj) in dets.iter().enumerate() {
                if j != i {
                    let q = quantize(self.weights[row + self.slot_of(dj)], scale);
                    dst[j] = (q as f64 / scale).min(clamp);
                }
            }
        }
    }
}

/// Advances a stamp epoch, clearing the stamp array on wraparound so a
/// stale stamp can never alias a live one.
fn bump_epoch(epoch: u32, stamps: &mut [u32]) -> u32 {
    let next = epoch.wrapping_add(1);
    if next == 0 {
        stamps.fill(0);
        return 1;
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gwt::GlobalWeightTable;
    use qec_circuit::{build_memory_z_circuit, NoiseModel};
    use surface_code::SurfaceCode;

    fn graph(d: usize, p: f64) -> MatchingGraph {
        let code = SurfaceCode::new(d).unwrap();
        let circuit = build_memory_z_circuit(&code, d, NoiseModel::depolarizing(p));
        MatchingGraph::from_circuit(&circuit)
    }

    #[test]
    fn boundary_table_matches_gwt_diagonal() {
        for (d, p) in [(3, 1e-3), (5, 5e-3), (7, 1e-3)] {
            let g = graph(d, p);
            let gwt = GlobalWeightTable::new(&g);
            let bt = BoundaryTable::new(&g);
            assert_eq!(bt.len(), gwt.len());
            for i in 0..gwt.len() as u32 {
                assert_eq!(bt.weight(i).to_bits(), gwt.boundary_weight(i).to_bits());
                assert_eq!(bt.obs(i), gwt.boundary_obs(i));
                assert_eq!(bt.weight_q(i), gwt.boundary_weight_q(i));
            }
        }
    }

    #[test]
    fn staged_entries_are_bit_identical_or_dominated() {
        let g = graph(5, 2e-3);
        let gwt = GlobalWeightTable::new(&g);
        let bt = BoundaryTable::new(&g);
        let mut p = LocalWeightProvider::new(&g, &bt);
        let n = g.num_detectors() as u32;
        let lists: Vec<Vec<u32>> = vec![
            vec![0],
            vec![0, 1],
            vec![0, n - 1],
            vec![3, 17, 40, 41],
            (0..n).step_by(7).collect(),
            (0..n).collect(),
        ];
        for dets in &lists {
            p.stage(dets);
            for &a in dets {
                for &b in dets {
                    if a == b {
                        continue;
                    }
                    let staged = p.pair_weight(a, b);
                    let truth = gwt.pair_weight(a, b);
                    if staged.is_finite() {
                        assert_eq!(
                            staged.to_bits(),
                            truth.to_bits(),
                            "settled ({a},{b}) differs"
                        );
                        assert_eq!(p.pair_obs(a, b), gwt.pair_obs(a, b));
                        assert_eq!(p.pair_weight_q(a, b), gwt.pair_weight_q(a, b));
                    } else {
                        // Dominated: the true weight must exceed the
                        // boundary alternative in both weight domains.
                        assert!(
                            truth > bt.weight(a) + bt.weight(b),
                            "unsettled ({a},{b}) not dominated: {truth}"
                        );
                        assert!(
                            gwt.pair_weight_q(a, b) as u16
                                > bt.weight_q(a) as u16 + bt.weight_q(b) as u16,
                            "unsettled ({a},{b}) not dominated in quantized domain"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn full_list_stage_settles_every_useful_pair() {
        // Every pair that could participate in an optimal matching
        // (weight at most the boundary sum) must be settled exactly.
        let g = graph(5, 1e-3);
        let gwt = GlobalWeightTable::new(&g);
        let bt = BoundaryTable::new(&g);
        let mut p = LocalWeightProvider::new(&g, &bt);
        let dets: Vec<u32> = (0..g.num_detectors() as u32).collect();
        p.stage(&dets);
        for &a in &dets {
            for &b in &dets {
                if a != b && gwt.pair_weight(a, b) <= bt.weight(a) + bt.weight(b) {
                    assert_eq!(
                        p.pair_weight(a, b).to_bits(),
                        gwt.pair_weight(a, b).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn gathers_match_gwt_gathers() {
        let g = graph(5, 2e-3);
        let gwt = GlobalWeightTable::new(&g);
        let bt = BoundaryTable::new(&g);
        let mut p = LocalWeightProvider::new(&g, &bt);
        let dets = vec![2u32, 9, 15, 33];
        p.stage(&dets);
        let (pe_l, be_l) = p.gather_small_exact(&dets, 2e4);
        let (pe_g, be_g) = gwt.gather_small_exact(&dets, 2e4);
        let (pq_l, bq_l) = p.gather_small_quantized(&dets);
        let (pq_g, bq_g) = gwt.gather_small_quantized(&dets);
        let mut t = 0;
        for i in 0..4 {
            for j in (i + 1)..4 {
                if p.pair_weight(dets[i], dets[j]).is_finite() {
                    // Settled: bit-equal to the GWT gather.
                    assert_eq!(pe_l[t].to_bits(), pe_g[t].to_bits());
                    assert_eq!(pq_l[t], pq_g[t]);
                } else {
                    // Dominated: local clamps/saturates, and the true
                    // value must beat the boundary sum in both domains.
                    assert_eq!(pe_l[t], 2e4);
                    assert_eq!(pq_l[t], u8::MAX as u16);
                    assert!(pe_g[t] > be_g[i] + be_g[j]);
                    assert!(pq_g[t] > bq_g[i] + bq_g[j]);
                }
                t += 1;
            }
        }
        assert_eq!(be_l, be_g);
        assert_eq!(bq_l, bq_g);

        let (mut wl, mut bl) = (Vec::new(), Vec::new());
        let (mut wg, mut bg) = (Vec::new(), Vec::new());
        p.gather_exact_clamped(&dets, 2e4, &mut wl, &mut bl);
        gwt.gather_exact_clamped(&dets, 2e4, &mut wg, &mut bg);
        assert_eq!(bl, bg);
        // Sub-list gathers read the staged block through the slot map.
        let sub = vec![9u32, 33];
        let (mut wsl, mut bsl) = (Vec::new(), Vec::new());
        p.gather_exact_clamped(&sub, 2e4, &mut wsl, &mut bsl);
        assert_eq!(bsl, vec![bt.weight(9), bt.weight(33)]);
        assert_eq!(wsl[0], 0.0);
        assert_eq!(wsl[1].to_bits(), wl[4 + 3].to_bits());
    }

    #[test]
    fn restaging_identical_list_is_memoized() {
        let g = graph(3, 1e-3);
        let bt = BoundaryTable::new(&g);
        let mut p = LocalWeightProvider::new(&g, &bt);
        p.stage(&[0, 5]);
        let after_first = p.stats();
        p.stage(&[0, 5]);
        let after_second = p.stats();
        assert_eq!(after_second.memo_hits, after_first.memo_hits + 1);
        assert_eq!(after_second.expansions, after_first.expansions);
        p.stage(&[0, 6]);
        assert!(p.stats().expansions > after_second.expansions);
    }

    #[test]
    fn lower_bound_never_exceeds_true_distance() {
        let g = graph(5, 5e-3);
        let gwt = GlobalWeightTable::new(&g);
        let bt = BoundaryTable::new(&g);
        let p = LocalWeightProvider::new(&g, &bt);
        let n = g.num_detectors() as u32;
        for a in 0..n {
            for b in 0..n {
                if a != b && gwt.pair_weight(a, b).is_finite() {
                    assert!(
                        p.lower_bound(a, b) <= gwt.pair_weight(a, b) * (1.0 + 1e-9) + 1e-9,
                        "LB({a},{b}) = {} > dist {}",
                        p.lower_bound(a, b),
                        gwt.pair_weight(a, b)
                    );
                }
            }
        }
    }
}
