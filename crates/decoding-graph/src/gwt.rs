//! The Global Weight Table (paper §5.1).

use crate::graph::MatchingGraph;
use crate::local::BoundaryTable;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Fixed-point subunits per unit of `−log₁₀ P` weight in the 8-bit
/// quantization (Q5.3: resolution 0.125, maximum representable weight
/// 31.875).
pub const DEFAULT_WEIGHT_SCALE: f64 = 8.0;

/// The Global Weight Table: all-pairs shortest-path weights between
/// detectors, 8-bit quantized, with boundary weights on the diagonal.
///
/// For a syndrome vector of length ℓ the table is an ℓ×ℓ matrix of 8-bit
/// weights, exactly as the paper describes (`36 KB` at d = 7 and `156 KB`
/// at d = 9 — see Table 6 and [`GlobalWeightTable::quantized_bytes`]).
/// Entry `(i, j)` is the quantized weight of the most likely error chain
/// flipping detectors `i` and `j`; entry `(i, i)` is the weight of the most
/// likely chain connecting `i` to the lattice boundary.
///
/// Alongside the hardware-faithful quantized table, the unquantized `f64`
/// weights are retained for the idealized software-MWPM baseline, and a
/// parallel matrix stores the logical-observable parity of each shortest
/// path so that a matching yields a logical-correction prediction.
#[derive(Debug, Clone)]
pub struct GlobalWeightTable {
    len: usize,
    quantized: Vec<u8>,
    exact: Vec<f64>,
    obs: Vec<u32>,
    scale: f64,
}

impl GlobalWeightTable {
    /// Computes the table from a matching graph with the default
    /// quantization scale.
    pub fn new(graph: &MatchingGraph) -> GlobalWeightTable {
        GlobalWeightTable::with_scale(graph, DEFAULT_WEIGHT_SCALE)
    }

    /// Computes the table with a custom fixed-point scale (subunits per
    /// unit weight).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive and finite.
    pub fn with_scale(graph: &MatchingGraph, scale: f64) -> GlobalWeightTable {
        let boundary = BoundaryTable::with_scale(graph, scale);
        GlobalWeightTable::with_scale_and_boundary(graph, scale, &boundary)
    }

    /// [`Self::with_scale`] reusing an already-built [`BoundaryTable`]
    /// (which must have been built with the same `scale`) for the
    /// diagonal, so a context that keeps both never runs the multi-source
    /// boundary Dijkstra twice.
    pub(crate) fn with_scale_and_boundary(
        graph: &MatchingGraph,
        scale: f64,
        boundary: &BoundaryTable,
    ) -> GlobalWeightTable {
        assert!(scale > 0.0 && scale.is_finite(), "invalid scale {scale}");
        let n = graph.num_detectors();
        let mut gwt = GlobalWeightTable {
            len: n,
            quantized: vec![u8::MAX; n * n],
            exact: vec![f64::INFINITY; n * n],
            obs: vec![0; n * n],
            scale,
        };

        // Dijkstra from every source over the detector-only graph (pair
        // paths may not hop through the boundary: matching both endpoints
        // to the boundary is a separate option decoders take via the
        // diagonal weights). Distances carry the observable parity of the
        // shortest path.
        let mut dist = vec![f64::INFINITY; n];
        let mut parity = vec![0u32; n];
        for src in 0..n {
            dist.fill(f64::INFINITY);
            parity.fill(0);
            dist[src] = 0.0;
            let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
            heap.push(Reverse((OrdF64(0.0), src as u32)));
            while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
                if d > dist[u as usize] {
                    continue;
                }
                for &ei in graph.incident_edges(u) {
                    let e = &graph.edges()[ei as usize];
                    let Some(v) = e.v else { continue };
                    let w = if e.u == u { v } else { e.u };
                    let nd = d + e.weight;
                    if nd < dist[w as usize] {
                        dist[w as usize] = nd;
                        parity[w as usize] = parity[u as usize] ^ e.observables;
                        heap.push(Reverse((OrdF64(nd), w)));
                    }
                }
            }
            for dst in 0..n {
                if dst == src {
                    continue;
                }
                gwt.exact[src * n + dst] = dist[dst];
                gwt.obs[src * n + dst] = parity[dst];
                gwt.quantized[src * n + dst] = quantize(dist[dst], scale);
            }
        }

        // Boundary weights on the diagonal come from the shared
        // `BoundaryTable` (the multi-source Dijkstra seeded at every
        // boundary edge), so the GWT and the GWT-free local path read
        // bit-identical boundary values by construction.
        for det in 0..n {
            gwt.exact[det * n + det] = boundary.weight(det as u32);
            gwt.obs[det * n + det] = boundary.obs(det as u32);
            gwt.quantized[det * n + det] = boundary.weight_q(det as u32);
        }

        gwt
    }

    /// Builds a table directly from raw entries — the programmable-GWT
    /// path (§8.2): control software computes weights from the current
    /// device calibration and writes them into the decoder's table.
    ///
    /// `exact` and `obs` are row-major ℓ×ℓ with boundary entries on the
    /// diagonal, in `−log₁₀ P` units; the 8-bit quantized view is derived
    /// with the given fixed-point `scale`.
    ///
    /// # Panics
    ///
    /// Panics if the slices are not ℓ², if a weight is negative or NaN, if
    /// the matrices are not symmetric, or if `scale` is not positive and
    /// finite.
    pub fn from_parts(len: usize, exact: Vec<f64>, obs: Vec<u32>, scale: f64) -> GlobalWeightTable {
        assert!(scale > 0.0 && scale.is_finite(), "invalid scale {scale}");
        assert_eq!(exact.len(), len * len, "weight matrix must be ℓ×ℓ");
        assert_eq!(obs.len(), len * len, "observable matrix must be ℓ×ℓ");
        for i in 0..len {
            for j in 0..len {
                let w = exact[i * len + j];
                assert!(!w.is_nan() && w >= 0.0, "invalid weight {w} at ({i},{j})");
                assert_eq!(
                    w.to_bits(),
                    exact[j * len + i].to_bits(),
                    "weight matrix must be symmetric at ({i},{j})"
                );
                assert_eq!(
                    obs[i * len + j],
                    obs[j * len + i],
                    "observable matrix must be symmetric at ({i},{j})"
                );
            }
        }
        let quantized = exact.iter().map(|&w| quantize(w, scale)).collect();
        GlobalWeightTable {
            len,
            quantized,
            exact,
            obs,
            scale,
        }
    }

    /// The syndrome-vector length ℓ (number of detectors).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fixed-point scale (subunits per unit weight).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Quantized (hardware) weight of pairing detectors `i` and `j`
    /// (`i != j`), in fixed-point subunits.
    #[inline]
    pub fn pair_weight_q(&self, i: u32, j: u32) -> u8 {
        self.quantized[i as usize * self.len + j as usize]
    }

    /// Quantized boundary weight of detector `i`.
    #[inline]
    pub fn boundary_weight_q(&self, i: u32) -> u8 {
        self.quantized[i as usize * self.len + i as usize]
    }

    /// Exact (unquantized) pair weight in `−log₁₀ P` units; infinite if the
    /// detectors are not connected without crossing the boundary.
    #[inline]
    pub fn pair_weight(&self, i: u32, j: u32) -> f64 {
        self.exact[i as usize * self.len + j as usize]
    }

    /// Exact boundary weight.
    #[inline]
    pub fn boundary_weight(&self, i: u32) -> f64 {
        self.exact[i as usize * self.len + i as usize]
    }

    /// Observable-parity mask of the shortest path between `i` and `j`.
    #[inline]
    pub fn pair_obs(&self, i: u32, j: u32) -> u32 {
        self.obs[i as usize * self.len + j as usize]
    }

    /// Observable-parity mask of the shortest boundary path of `i`.
    #[inline]
    pub fn boundary_obs(&self, i: u32) -> u32 {
        self.obs[i as usize * self.len + i as usize]
    }

    /// Size of the quantized table in bytes (ℓ²) — the GWT line of the
    /// paper's Table 6.
    pub fn quantized_bytes(&self) -> usize {
        self.len * self.len
    }

    /// Converts a quantized fixed-point weight back to `−log₁₀ P` units.
    pub fn dequantize(&self, q: u16) -> f64 {
        q as f64 / self.scale
    }
}

/// Upper bound on the detector-list length of one batched gather:
/// covers the closed forms (k ≤ 4) and the whole subset-DP band with
/// headroom.
pub const MAX_GATHER_NODES: usize = 16;

/// Cache-line-aligned destination for [`GlobalWeightTable::gather_quantized`]:
/// a row-major k×k block of quantized weights with boundary weights on
/// the diagonal, mirroring the table's own layout so each destination row
/// is one contiguous run the compiler can vectorize into.
#[repr(align(64))]
#[derive(Debug, Clone)]
pub struct QuantizedBlock {
    block: [u8; MAX_GATHER_NODES * MAX_GATHER_NODES],
}

impl Default for QuantizedBlock {
    fn default() -> QuantizedBlock {
        QuantizedBlock {
            block: [0; MAX_GATHER_NODES * MAX_GATHER_NODES],
        }
    }
}

impl QuantizedBlock {
    /// A zeroed block.
    pub fn new() -> QuantizedBlock {
        QuantizedBlock::default()
    }

    /// Entry `(i, j)` of the last gathered k×k block: the quantized pair
    /// weight for `i != j`, the quantized boundary weight of `i` on the
    /// diagonal.
    #[inline]
    pub fn at(&self, i: usize, j: usize, k: usize) -> u8 {
        self.block[i * k + j]
    }
}

impl GlobalWeightTable {
    /// Batched quantized gather for a sparse detector list: pulls the
    /// whole k×k sub-block (all O(k²) pair weights plus the boundary
    /// diagonal) in one sweep, one contiguous source row per detector.
    ///
    /// With `dets` sorted ascending — how syndrome extraction produces
    /// them — every source row is read strictly left to right, so the
    /// sweep touches each cache line of a row at most once. The inner
    /// copy is chunked 4-wide so it unrolls without a remainder branch
    /// per element.
    ///
    /// # Panics
    ///
    /// Panics if `dets.len() > MAX_GATHER_NODES` or a detector index is
    /// out of range.
    pub fn gather_quantized(&self, dets: &[u32], out: &mut QuantizedBlock) {
        let k = dets.len();
        assert!(
            k <= MAX_GATHER_NODES,
            "gather limited to {MAX_GATHER_NODES} nodes, got {k}"
        );
        for (i, &di) in dets.iter().enumerate() {
            let row = &self.quantized[di as usize * self.len..][..self.len];
            let dst = &mut out.block[i * k..][..k];
            let mut src = dets.chunks_exact(4);
            let mut d4 = dst.chunks_exact_mut(4);
            for (ds, chunk) in (&mut src).zip(&mut d4) {
                chunk[0] = row[ds[0] as usize];
                chunk[1] = row[ds[1] as usize];
                chunk[2] = row[ds[2] as usize];
                chunk[3] = row[ds[3] as usize];
            }
            for (&d, slot) in src.remainder().iter().zip(d4.into_remainder()) {
                *slot = row[d as usize];
            }
        }
    }

    /// Gathers the closed-form operand set for a k ≤ 4 detector list
    /// straight from the quantized table: pair weights in the triangular
    /// order `(0,1), (0,2), (0,3), (1,2), (1,3), (2,3)` plus the boundary
    /// weights — integer domain end to end, no dequantization.
    ///
    /// Each source row is swept forward once (ascending `dets` keeps the
    /// reads monotonic), which is the whole point versus k² independent
    /// `pair_weight_q` calls.
    pub fn gather_small_quantized(&self, dets: &[u32]) -> ([u16; 6], [u16; 4]) {
        let k = dets.len();
        debug_assert!(k <= 4);
        let mut pairs = [0u16; 6];
        let mut boundary = [0u16; 4];
        let mut p = 0;
        for (i, &di) in dets.iter().enumerate() {
            let row = &self.quantized[di as usize * self.len..][..self.len];
            boundary[i] = row[di as usize] as u16;
            for &dj in &dets[i + 1..] {
                pairs[p] = row[dj as usize] as u16;
                p += 1;
            }
        }
        (pairs, boundary)
    }

    /// The `f64` sibling of [`gather_small_quantized`](Self::gather_small_quantized)
    /// for the idealized (unquantized) decoder; pair weights are clamped
    /// to `clamp` exactly as the staged decode path clamps them.
    pub fn gather_small_exact(&self, dets: &[u32], clamp: f64) -> ([f64; 6], [f64; 4]) {
        let k = dets.len();
        debug_assert!(k <= 4);
        let mut pairs = [0f64; 6];
        let mut boundary = [0f64; 4];
        let mut p = 0;
        for (i, &di) in dets.iter().enumerate() {
            let row = &self.exact[di as usize * self.len..][..self.len];
            boundary[i] = row[di as usize];
            for &dj in &dets[i + 1..] {
                pairs[p] = row[dj as usize].min(clamp);
                p += 1;
            }
        }
        (pairs, boundary)
    }

    /// Stages the full k×k exact weight matrix (pairs clamped to `clamp`,
    /// diagonal zero) and boundary vector for a sparse detector list —
    /// the batched replacement for staging via k² random single-entry
    /// closures. Rows are swept forward-contiguously.
    pub fn gather_exact_clamped(
        &self,
        dets: &[u32],
        clamp: f64,
        weights: &mut Vec<f64>,
        boundary: &mut Vec<f64>,
    ) {
        let k = dets.len();
        weights.clear();
        weights.resize(k * k, 0.0);
        boundary.clear();
        boundary.resize(k, 0.0);
        for (i, &di) in dets.iter().enumerate() {
            let row = &self.exact[di as usize * self.len..][..self.len];
            boundary[i] = row[di as usize];
            let dst = &mut weights[i * k..][..k];
            for (j, &dj) in dets.iter().enumerate() {
                if j != i {
                    dst[j] = row[dj as usize].min(clamp);
                }
            }
        }
    }
}

/// Fixed-point quantization of a `−log₁₀ P` weight: round to the nearest
/// subunit, saturating at `u8::MAX` (which non-finite weights map to).
/// Shared by the table builder and the GWT-free local provider so both
/// derive identical quantized views.
pub(crate) fn quantize(weight: f64, scale: f64) -> u8 {
    if !weight.is_finite() {
        return u8::MAX;
    }
    (weight * scale).round().clamp(0.0, u8::MAX as f64) as u8
}

/// Total-ordered f64 for the Dijkstra heap (weights are never NaN).
/// Shared with the local provider so both heaps order identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdF64(pub(crate) f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec_circuit::{build_memory_z_circuit, NoiseModel};
    use surface_code::SurfaceCode;

    fn gwt(d: usize, p: f64) -> GlobalWeightTable {
        let code = SurfaceCode::new(d).unwrap();
        let circuit = build_memory_z_circuit(&code, d, NoiseModel::depolarizing(p));
        GlobalWeightTable::new(&MatchingGraph::from_circuit(&circuit))
    }

    #[test]
    fn table_is_symmetric() {
        let t = gwt(3, 1e-3);
        for i in 0..t.len() as u32 {
            for j in 0..t.len() as u32 {
                assert_eq!(t.pair_weight_q(i, j), t.pair_weight_q(j, i));
                assert_eq!(t.pair_obs(i, j), t.pair_obs(j, i));
            }
        }
    }

    #[test]
    fn triangle_inequality_holds_exactly() {
        // Shortest-path distances always satisfy the triangle inequality.
        let t = gwt(3, 1e-3);
        let n = t.len() as u32;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    if i != j && j != k && i != k {
                        assert!(
                            t.pair_weight(i, k) <= t.pair_weight(i, j) + t.pair_weight(j, k) + 1e-9
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn boundary_weights_are_finite() {
        // Every detector can reach the boundary through the graph.
        let t = gwt(5, 1e-3);
        for i in 0..t.len() as u32 {
            assert!(t.boundary_weight(i).is_finite(), "detector {i}");
            assert!(t.boundary_weight_q(i) < u8::MAX);
        }
    }

    #[test]
    fn paper_table_6_gwt_sizes() {
        assert_eq!(gwt(7, 1e-3).quantized_bytes(), 36 * 1024); // 36 KB at d = 7
                                                               // d = 9 is ℓ = 400 → 160 000 B = 156.25 KiB, the paper's "156KB".
        let code = SurfaceCode::new(9).unwrap();
        let len = code.resources().syndrome_len_per_basis;
        assert_eq!(len * len, 160_000);
    }

    #[test]
    fn quantization_roundtrip() {
        let t = gwt(3, 1e-3);
        for i in 0..t.len() as u32 {
            for j in 0..t.len() as u32 {
                let exact = if i == j {
                    t.boundary_weight(i)
                } else {
                    t.pair_weight(i, j)
                };
                let q = if i == j {
                    t.boundary_weight_q(i)
                } else {
                    t.pair_weight_q(i, j)
                };
                if exact.is_finite() && exact < 31.0 {
                    assert!(
                        (t.dequantize(q as u16) - exact).abs() <= 0.5 / t.scale() + 1e-9,
                        "({i},{j}): exact {exact}, quantized {q}"
                    );
                }
            }
        }
    }

    #[test]
    fn nearby_detectors_are_cheaper_than_distant_ones() {
        // Within one round-layer, adjacent stabilizers (one shared data
        // qubit) must be cheaper to pair than stabilizers at opposite
        // lattice corners.
        let code = SurfaceCode::new(5).unwrap();
        let circuit = build_memory_z_circuit(&code, 5, NoiseModel::depolarizing(1e-3));
        let g = MatchingGraph::from_circuit(&circuit);
        let t = GlobalWeightTable::new(&g);
        // Detector indices 0.. are round-0 Z stabilizers in lattice order.
        let coords: Vec<_> = (0..12u32).map(|i| g.coord(i)).collect();
        let mut best_close = f64::INFINITY;
        let mut best_far: f64 = 0.0;
        for i in 0..12u32 {
            for j in (i + 1)..12u32 {
                // Diagonally adjacent Z ancillas (sharing one data qubit)
                // sit at doubled-coordinate offset (±2, ±2).
                let dr = coords[i as usize].row.abs_diff(coords[j as usize].row);
                let dc = coords[i as usize].col.abs_diff(coords[j as usize].col);
                let w = t.pair_weight(i, j);
                if dr == 2 && dc == 2 {
                    best_close = best_close.min(w);
                } else if dr + dc >= 12 {
                    best_far = best_far.max(w.min(1e6));
                }
            }
        }
        assert!(
            best_close < best_far,
            "close pairs ({best_close}) should be cheaper than far pairs ({best_far})"
        );
    }

    #[test]
    fn weight_of_single_error_pair_tracks_probability() {
        // An adjacent detector pair at p = 1e-3 should have weight around
        // −log10(O(p)) ∈ (2, 4).
        let t = gwt(3, 1e-3);
        let mut min_w = f64::INFINITY;
        for i in 0..t.len() as u32 {
            for j in 0..t.len() as u32 {
                if i != j {
                    min_w = min_w.min(t.pair_weight(i, j));
                }
            }
        }
        assert!(min_w > 2.0 && min_w < 4.0, "min pair weight {min_w}");
    }

    #[test]
    fn dequantize_inverts_scale() {
        let t = gwt(3, 1e-3);
        assert_eq!(t.dequantize(16), 2.0);
    }

    #[test]
    fn gathers_match_single_entry_accessors() {
        let t = gwt(3, 2e-3);
        let n = t.len() as u32;
        let lists: Vec<Vec<u32>> = vec![
            vec![0],
            vec![1, 4],
            vec![0, 2, 7],
            vec![3, 5, 8, n - 1],
            vec![0, 1, 2, 3, 4, 9, 11, n - 2, n - 1],
        ];
        for dets in &lists {
            let k = dets.len();
            let mut block = QuantizedBlock::new();
            t.gather_quantized(dets, &mut block);
            let mut w = Vec::new();
            let mut b = Vec::new();
            t.gather_exact_clamped(dets, 2e4, &mut w, &mut b);
            for i in 0..k {
                assert_eq!(block.at(i, i, k), t.boundary_weight_q(dets[i]));
                assert_eq!(b[i].to_bits(), t.boundary_weight(dets[i]).to_bits());
                assert_eq!(w[i * k + i], 0.0);
                for j in 0..k {
                    if i != j {
                        assert_eq!(block.at(i, j, k), t.pair_weight_q(dets[i], dets[j]));
                        assert_eq!(
                            w[i * k + j].to_bits(),
                            t.pair_weight(dets[i], dets[j]).min(2e4).to_bits()
                        );
                    }
                }
            }
            if k <= 4 {
                let (pq, bq) = t.gather_small_quantized(dets);
                let (pe, be) = t.gather_small_exact(dets, 2e4);
                let mut p = 0;
                for i in 0..k {
                    assert_eq!(bq[i], t.boundary_weight_q(dets[i]) as u16);
                    assert_eq!(be[i].to_bits(), t.boundary_weight(dets[i]).to_bits());
                    for j in (i + 1)..k {
                        assert_eq!(pq[p], t.pair_weight_q(dets[i], dets[j]) as u16);
                        assert_eq!(
                            pe[p].to_bits(),
                            t.pair_weight(dets[i], dets[j]).min(2e4).to_bits()
                        );
                        p += 1;
                    }
                }
            }
        }
    }
}
