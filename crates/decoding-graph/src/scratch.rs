//! Reusable decode scratch buffers.
//!
//! Batched decoding runs millions of shots through one decoder instance;
//! allocating working memory per shot dominates the runtime of the
//! software decoders (the subset DP alone needs `O(2^k)` floats). A
//! [`DecodeScratch`] is an arena of growable buffers that a worker owns
//! alongside its decoder and passes into
//! [`Decoder::decode_with_scratch`](crate::Decoder::decode_with_scratch)
//! for every shot: buffers are cleared, never shrunk, so steady-state
//! decoding performs no allocation.
//!
//! The buffers are deliberately generic (weight tables, per-node costs,
//! index maps) so that any decoder in the workspace can reuse the same
//! arena without this crate knowing its internals.

/// A reusable arena of decode working buffers.
///
/// All buffers keep their capacity across calls. A decoder using the
/// arena must not assume the buffers are empty on entry — clear (or
/// `resize`) what it uses.
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    /// Dense pairwise weight matrix (row-major, `k × k`).
    pub weights: Vec<f64>,
    /// Per-node boundary weights.
    pub boundary: Vec<f64>,
    /// Per-state cost table (e.g. the subset DP's `2^k` entries).
    pub cost: Vec<f64>,
    /// Per-node mate assignment; `usize::MAX` means "boundary".
    pub mate: Vec<usize>,
    /// Detector-index working buffer.
    pub detectors: Vec<u32>,
    /// Per-node bitmask working buffer (e.g. the subset DP's pruned
    /// adjacency masks for cluster decomposition).
    pub parent: Vec<u32>,
    /// Per-state validity stamps paired with `cost`: `stamp[s] == epoch`
    /// marks `cost[s]` as computed in the current solve, which lets a
    /// memoized solver reuse the table across calls without an `O(2^k)`
    /// clear.
    pub stamp: Vec<u32>,
    /// Current stamp epoch for `stamp` (bumped once per solve).
    pub epoch: u32,
}

impl DecodeScratch {
    /// A fresh, empty arena.
    pub fn new() -> DecodeScratch {
        DecodeScratch::default()
    }

    /// Clears every buffer without releasing capacity.
    pub fn clear(&mut self) {
        self.weights.clear();
        self.boundary.clear();
        self.cost.clear();
        self.mate.clear();
        self.detectors.clear();
        self.parent.clear();
        self.stamp.clear();
        self.epoch = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_keeps_capacity() {
        let mut s = DecodeScratch::new();
        s.cost.resize(1 << 10, 0.0);
        s.mate.resize(16, usize::MAX);
        let cap = s.cost.capacity();
        s.clear();
        assert!(s.cost.is_empty());
        assert!(s.mate.is_empty());
        assert_eq!(s.cost.capacity(), cap);
    }
}
