//! Reusable decode scratch buffers.
//!
//! Batched decoding runs millions of shots through one decoder instance;
//! allocating working memory per shot dominates the runtime of the
//! software decoders (the subset DP alone needs `O(2^k)` floats). A
//! [`DecodeScratch`] is an arena of growable buffers that a worker owns
//! alongside its decoder and passes into
//! [`Decoder::decode_with_scratch`](crate::Decoder::decode_with_scratch)
//! for every shot: buffers are cleared, never shrunk, so steady-state
//! decoding performs no allocation.
//!
//! The buffers are deliberately generic (weight tables, per-node costs,
//! index maps) so that any decoder in the workspace can reuse the same
//! arena without this crate knowing its internals.

use crate::graph_pd::GraphPdScratch;
use crate::ondemand::OndemandScratch;
use std::collections::VecDeque;

/// A staged representative edge for a contracted-blossom row of the
/// sparse blossom solver's virtual adjacency.
///
/// `u` and `v` are the **original** (pre-contraction, 1-based) endpoints
/// of the edge the row entry represents; `w == 0` marks "no edge staged"
/// (original-pair weights are strictly positive after reflection, so the
/// zero is unambiguous).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepEdge {
    /// Original 1-based endpoint on the row side.
    pub u: usize,
    /// Original 1-based endpoint on the column side.
    pub v: usize,
    /// Reflected integer edge weight; `0` means absent.
    pub w: i64,
}

/// Persistent per-worker arena for the sparse scratch-reusing blossom
/// solver (`blossom_mwpm::sparse_blossom`).
///
/// The dense formulation stages a `(2n+1)²` edge matrix per shot; this
/// arena instead keeps only the `(n+1)²` reflected weight block (needed
/// anyway for the dual bound) plus **compact blossom-row tables** that
/// are written lazily, only when a blossom actually forms. Buffers grow
/// monotonically and are re-stamped per solve, so consecutive hard shots
/// in a tile reuse every allocation: steady-state deep-tail decoding
/// performs no heap traffic at all.
///
/// Stale contents are deliberately allowed to survive between solves —
/// the solver's invariant is that every blossom-indexed slot is written
/// before it is read within a solve, which is what makes the reuse safe
/// *and* keeps the result a pure function of the current shot (required
/// by the pipeline's streamed == barrier bit-identity contract; dual
/// values are therefore never warm-started across shots, only the
/// allocations and the `vis` stamping epoch carry over).
#[derive(Debug, Clone, Default)]
pub struct SparseBlossomScratch {
    /// Reflected pair weights, `(n+1)²` flat, 1-based rows/columns
    /// (row 0 / column 0 are the "no vertex" sentinel; `weights[0] == 0`).
    pub weights: Vec<i64>,
    /// Dual variables (`lab`), indexed by vertex/blossom id up to `2n`.
    pub lab: Vec<i64>,
    /// Mate assignment, 1-based; `0` means unmatched.
    pub mate: Vec<usize>,
    /// Best non-tight neighbour per tree vertex (slack bookkeeping).
    pub slack: Vec<usize>,
    /// Surface (outermost-blossom) pointer per vertex; `0` = free id.
    pub st: Vec<usize>,
    /// Alternating-tree parent pointers (by original endpoint).
    pub pa: Vec<usize>,
    /// Tree side per surface node: `-1` out, `0` even/S, `1` odd/T.
    pub s: Vec<i8>,
    /// LCA visit stamps, validated against [`Self::vis_epoch`].
    pub vis: Vec<usize>,
    /// Monotone stamp for `vis`; never reset, so `vis` itself is never
    /// cleared between solves.
    pub vis_epoch: usize,
    /// Representative edges for blossom rows `g[b][x]`, compact
    /// `n × (2n+1)` layout (row `b - n - 1`).
    pub rep_row: Vec<RepEdge>,
    /// Representative edges for blossom columns `g[x][b]` with `x ≤ n`,
    /// same compact layout.
    pub rep_col: Vec<RepEdge>,
    /// For each blossom row: which member subsumed original vertex `x`
    /// (`0` = none), compact `n × (n+1)` layout.
    pub flower_from: Vec<usize>,
    /// Blossom member cycles (index `b`); member vectors keep capacity.
    pub flower: Vec<Vec<usize>>,
    /// BFS queue over tree growth.
    pub queue: VecDeque<usize>,
    /// Number of solves served by this arena (reuse telemetry).
    pub solves: u64,
}

impl SparseBlossomScratch {
    /// A fresh, empty arena.
    pub fn new() -> SparseBlossomScratch {
        SparseBlossomScratch::default()
    }

    /// Clears every buffer without releasing capacity.
    pub fn clear(&mut self) {
        self.weights.clear();
        self.lab.clear();
        self.mate.clear();
        self.slack.clear();
        self.st.clear();
        self.pa.clear();
        self.s.clear();
        self.vis.clear();
        self.vis_epoch = 0;
        self.rep_row.clear();
        self.rep_col.clear();
        self.flower_from.clear();
        for f in &mut self.flower {
            f.clear();
        }
        self.queue.clear();
        self.solves = 0;
    }
}

/// A reusable arena of decode working buffers.
///
/// All buffers keep their capacity across calls. A decoder using the
/// arena must not assume the buffers are empty on entry — clear (or
/// `resize`) what it uses.
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    /// Dense pairwise weight matrix (row-major, `k × k`).
    pub weights: Vec<f64>,
    /// Per-node boundary weights.
    pub boundary: Vec<f64>,
    /// Per-state cost table (e.g. the subset DP's `2^k` entries).
    pub cost: Vec<f64>,
    /// Per-node mate assignment; `usize::MAX` means "boundary".
    pub mate: Vec<usize>,
    /// Detector-index working buffer.
    pub detectors: Vec<u32>,
    /// Per-node bitmask working buffer (e.g. the subset DP's pruned
    /// adjacency masks for cluster decomposition).
    pub parent: Vec<u32>,
    /// Per-state validity stamps paired with `cost`: `stamp[s] == epoch`
    /// marks `cost[s]` as computed in the current solve, which lets a
    /// memoized solver reuse the table across calls without an `O(2^k)`
    /// clear.
    pub stamp: Vec<u32>,
    /// Current stamp epoch for `stamp` (bumped once per solve).
    pub epoch: u32,
    /// Cluster end offsets for the deep-syndrome decomposition path.
    pub ends: Vec<u32>,
    /// Persistent arena for the sparse blossom solver (deep tail).
    pub sparse: SparseBlossomScratch,
    /// Persistent arena (and work counters) for the on-demand staging
    /// engine (deep tail under [`WeightSource`](crate::WeightSource)
    /// `::Local`).
    pub ondemand: OndemandScratch,
    /// Persistent arena (and work counters) for the graph-native
    /// primal-dual discovery engine (opt-in deep tail under
    /// [`WeightSource`](crate::WeightSource) `::Local`).
    pub graphpd: GraphPdScratch,
}

impl DecodeScratch {
    /// A fresh, empty arena.
    pub fn new() -> DecodeScratch {
        DecodeScratch::default()
    }

    /// Clears every buffer without releasing capacity.
    pub fn clear(&mut self) {
        self.weights.clear();
        self.boundary.clear();
        self.cost.clear();
        self.mate.clear();
        self.detectors.clear();
        self.parent.clear();
        self.stamp.clear();
        self.epoch = 0;
        self.ends.clear();
        self.sparse.clear();
        self.ondemand.clear();
        self.graphpd.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_keeps_capacity() {
        let mut s = DecodeScratch::new();
        s.cost.resize(1 << 10, 0.0);
        s.mate.resize(16, usize::MAX);
        let cap = s.cost.capacity();
        s.clear();
        assert!(s.cost.is_empty());
        assert!(s.mate.is_empty());
        assert_eq!(s.cost.capacity(), cap);
    }
}
