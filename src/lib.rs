//! # Astrea: accurate quantum error-decoding via practical MWPM
//!
//! A from-scratch Rust reproduction of *Vittal, Das & Qureshi, "Astrea:
//! Accurate Quantum Error-Decoding via Practical Minimum-Weight
//! Perfect-Matching" (ISCA 2023)* — the real-time surface-code decoders
//! **Astrea** (exhaustive MWPM to Hamming weight 10) and **Astrea-G**
//! (filtered greedy MWPM to distance 9), together with the full evaluation
//! stack they require: a rotated-surface-code model, a circuit-level
//! noise simulator with detector error models, exact software MWPM
//! baselines (subset DP and a dense blossom algorithm), a Union-Find
//! decoder, LILLIPUT- and Clique-style baselines, and a Monte-Carlo /
//! stratified logical-error-rate harness.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! roof so applications can depend on a single crate.
//!
//! ## Quickstart
//!
//! ```
//! use astrea::prelude::*;
//! use rand::SeedableRng;
//!
//! // A distance-3 surface code memory experiment at p = 10⁻³.
//! let code = SurfaceCode::new(3)?;
//! let ctx = DecodingContext::for_memory_experiment(&code, NoiseModel::depolarizing(1e-3));
//!
//! // Sample one noisy shot and decode it in real time with Astrea.
//! let mut sampler = DemSampler::new(ctx.dem());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let shot = sampler.sample(&mut rng);
//! let mut decoder = AstreaDecoder::new(ctx.gwt());
//! let prediction = decoder.decode(&shot.detectors);
//! assert!(prediction.latency_ns(250.0) <= 456.0); // the paper's worst case
//! # Ok::<(), surface_code::InvalidDistance>(())
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! `astrea-exp` binary for the paper's tables and figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use astrea_core;
pub use astrea_experiments as experiments;
pub use astrea_serve;
pub use blossom_mwpm;
pub use decoding_graph;
pub use qec_circuit;
pub use surface_code;
pub use union_find_decoder;

/// The most common imports, bundled.
pub mod prelude {
    pub use astrea_core::{
        decode_slice, shot_seed, AstreaConfig, AstreaDecoder, AstreaGConfig, AstreaGDecoder,
        BatchDecoder, BatchDecoderFactory, BatchResult, CliqueDecoder, CycleModel, LatencyStats,
        LutDecoder, SliceOutcome, SyndromeBatch, SyndromeBatchBuilder, SyndromeCompressor,
    };
    pub use astrea_experiments::{
        decode_batch_ler, estimate_ler, estimate_ler_barrier, estimate_ler_streamed, mwpm_factory,
        sample_batch, sample_batch_scalar, ExperimentContext, LerResult, PipelineConfig,
        SyndromeSource,
    };
    pub use astrea_serve::{
        ClientSession, DecodeService, ServeConfig, ServiceStats, SubmitPolicy, WireClient,
    };
    pub use blossom_mwpm::{DeepBackend, LocalMwpmDecoder, MwpmDecoder, DP_NODE_LIMIT};
    pub use decoding_graph::{
        BoundaryTable, DecodeScratch, Decoder, DecodingContext, GlobalWeightTable, GraphPdScratch,
        GraphPdStats, LocalWeightProvider, LocalWeightStats, MatchingGraph, OndemandStats,
        PathReconstructor, Prediction, WeightSource,
    };
    pub use qec_circuit::{
        build_memory_x_circuit, build_memory_z_circuit, column_seed, BatchDemSampler,
        BatchFrameSimulator, BitTable, Circuit, DemSampler, DetectorErrorModel, FrameSimulator,
        NoiseMap, NoiseModel, Shot, TableauSimulator,
    };
    pub use surface_code::{Basis, CodeResources, Coord, Pauli, SurfaceCode};
    pub use union_find_decoder::{GrowthPolicy, UnionFindDecoder};
}
